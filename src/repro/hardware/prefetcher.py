"""Hardware prefetcher models.

Section 9 of the paper studies the four prefetchers of Intel server
cores, toggled through MSR 0x1A4:

- L2 streamer      (bit 0) -- tracks streams of accesses per 4 KB page
  and runs up to 20 lines ahead of the demand stream,
- L2 next line     (bit 1, "adjacent cache line") -- fetches the buddy
  line completing a 128 B pair,
- L1 streamer      (bit 2, "DCU prefetcher") -- fetches the next line on
  ascending streams,
- L1 next line     (bit 3, "DCU IP prefetcher" approximated as a
  next-line fetcher).

:class:`PrefetcherConfig` mirrors the six configurations of Figure 26.
The trace-driven prefetchers here are used by
:mod:`repro.core.tracesim`; the analytic cycle model uses the
``sequential_coverage`` summary, which is itself validated against the
trace simulation in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.hardware.cache import SetAssociativeCache
from repro.hardware.spec import PAGE_BYTES

LINES_PER_PAGE = PAGE_BYTES // 64


@dataclass(frozen=True)
class PrefetcherConfig:
    """Which of the four hardware prefetchers are enabled.

    Mirrors the MSR-based on/off control used in the paper's Section 9.
    """

    l1_next_line: bool = True
    l1_streamer: bool = True
    l2_next_line: bool = True
    l2_streamer: bool = True

    NAMES = ("l1_next_line", "l1_streamer", "l2_next_line", "l2_streamer")

    @classmethod
    def all_enabled(cls) -> "PrefetcherConfig":
        """Default machine configuration (all four prefetchers on)."""
        return cls()

    @classmethod
    def all_disabled(cls) -> "PrefetcherConfig":
        return cls(False, False, False, False)

    @classmethod
    def only(cls, name: str) -> "PrefetcherConfig":
        """Configuration with exactly one prefetcher enabled."""
        if name not in cls.NAMES:
            raise ValueError(f"unknown prefetcher {name!r}; expected one of {cls.NAMES}")
        return replace(cls.all_disabled(), **{name: True})

    @classmethod
    def figure26_configs(cls) -> dict[str, "PrefetcherConfig"]:
        """The six configurations of Figure 26, in paper order."""
        return {
            "All disabled": cls.all_disabled(),
            "L1 NL": cls.only("l1_next_line"),
            "L1 Str.": cls.only("l1_streamer"),
            "L2 NL": cls.only("l2_next_line"),
            "L2 Str.": cls.only("l2_streamer"),
            "All enabled": cls.all_enabled(),
        }

    def enabled_names(self) -> tuple[str, ...]:
        return tuple(name for name in self.NAMES if getattr(self, name))

    @property
    def any_enabled(self) -> bool:
        return bool(self.enabled_names())

    def sequential_coverage(self) -> float:
        """Fraction of sequential-stream demand misses whose latency the
        enabled prefetchers hide.

        These per-configuration coverages reproduce the relative
        response times of Figure 26 (all-off is ~3.7x slower than
        all-on; the L2 streamer alone recovers almost everything) and
        are cross-checked against the trace-driven simulation in
        ``tests/core/test_tracesim.py``.
        """
        coverage = 0.0
        if self.l1_next_line:
            coverage = max(coverage, 0.45)
        if self.l1_streamer:
            coverage = max(coverage, 0.60)
        if self.l2_next_line:
            coverage = max(coverage, 0.50)
        if self.l2_streamer:
            coverage = max(coverage, 0.92)
        if self.l2_streamer and (self.l1_streamer or self.l1_next_line):
            coverage = 0.95
        return coverage

    def random_coverage(self) -> float:
        """Prefetcher help on pointer-chasing random accesses is small;
        Section 9 measures ~20 percent response-time effect for the
        large join, which a ~0.2 miss coverage reproduces."""
        return 0.20 if self.any_enabled else 0.0


class NextLinePrefetcher:
    """On a demand miss for line L, prefetch line L+1 into the target
    cache (the "adjacent line" / DCU next-line behaviour)."""

    def __init__(self, target: SetAssociativeCache):
        self.target = target
        self.issued = 0

    def on_access(self, line: int, hit: bool) -> None:
        if not hit:
            if self.target.prefetch_line(line + 1):
                self.issued += 1

    def reset(self) -> None:
        self.issued = 0


@dataclass
class _StreamTracker:
    """Per-4KB-page stream detection state for the streamer."""

    page: int
    last_line: int
    direction: int = 0
    confidence: int = 0


class StreamerPrefetcher:
    """Stream prefetcher: detects ascending/descending line streams
    within a 4 KB page and prefetches ``degree`` lines ahead.

    The L2 streamer is configured with a deep lookahead (it "can run up
    to 20 lines ahead" per Intel's documentation); the L1 streamer is
    shallower.
    """

    def __init__(self, target: SetAssociativeCache, degree: int = 2, max_trackers: int = 16):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.target = target
        self.degree = degree
        self.max_trackers = max_trackers
        self._trackers: dict[int, _StreamTracker] = {}
        self.issued = 0

    def on_access(self, line: int, hit: bool) -> None:
        page = line // LINES_PER_PAGE
        tracker = self._trackers.get(page)
        if tracker is None:
            if len(self._trackers) >= self.max_trackers:
                # Evict the stalest tracker (dict preserves insert order).
                self._trackers.pop(next(iter(self._trackers)))
            self._trackers[page] = _StreamTracker(page=page, last_line=line)
            return
        step = line - tracker.last_line
        if step == 0:
            return
        direction = 1 if step > 0 else -1
        if direction == tracker.direction:
            tracker.confidence = min(tracker.confidence + 1, 4)
        else:
            tracker.direction = direction
            tracker.confidence = 1
        tracker.last_line = line
        if tracker.confidence >= 2:
            self._issue(line, direction, page)

    def _issue(self, line: int, direction: int, page: int) -> None:
        for distance in range(1, self.degree + 1):
            candidate = line + direction * distance
            if candidate // LINES_PER_PAGE != page:
                break  # streamers do not cross 4 KB page boundaries
            if self.target.prefetch_line(candidate):
                self.issued += 1

    def tracked_pages(self) -> Iterator[int]:
        return iter(self._trackers)

    def reset(self) -> None:
        self._trackers.clear()
        self.issued = 0
