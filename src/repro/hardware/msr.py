"""Emulated model-specific register (MSR) control for the prefetchers.

The paper (Section 9, citing Intel's disclosure [9]) toggles the four
hardware prefetchers by flipping bits in **MSR 0x1A4**:

| bit | prefetcher (Intel name)                  | this library        |
|-----|------------------------------------------|---------------------|
| 0   | L2 hardware prefetcher (streamer)        | ``l2_streamer``     |
| 1   | L2 adjacent cache line prefetcher        | ``l2_next_line``    |
| 2   | DCU prefetcher (L1 next-line/streamer)   | ``l1_streamer``     |
| 3   | DCU IP prefetcher                        | ``l1_next_line``    |

A **set** bit *disables* the corresponding prefetcher (the hardware
convention), so value 0x0 is "everything on" and 0xF is "everything
off".  :class:`MsrFile` mimics the ``/dev/cpu/*/msr`` interface the
paper's scripts write through (via ``wrmsr``), mapping register values
to :class:`~repro.hardware.prefetcher.PrefetcherConfig` objects.
"""

from __future__ import annotations

from repro.hardware.prefetcher import PrefetcherConfig

#: The prefetcher-control MSR address on Intel Core processors.
MSR_MISC_FEATURE_CONTROL = 0x1A4

#: bit -> PrefetcherConfig field (a set bit disables the prefetcher).
PREFETCHER_BITS = {
    0: "l2_streamer",
    1: "l2_next_line",
    2: "l1_streamer",
    3: "l1_next_line",
}

ALL_PREFETCHERS_MASK = 0xF


def config_from_msr(value: int) -> PrefetcherConfig:
    """Decode an MSR 0x1A4 value into a prefetcher configuration."""
    if value < 0:
        raise ValueError("MSR value must be non-negative")
    fields = {
        name: not (value >> bit) & 1 for bit, name in PREFETCHER_BITS.items()
    }
    return PrefetcherConfig(**fields)


def msr_from_config(config: PrefetcherConfig) -> int:
    """Encode a prefetcher configuration as an MSR 0x1A4 value."""
    value = 0
    for bit, name in PREFETCHER_BITS.items():
        if not getattr(config, name):
            value |= 1 << bit
    return value


class MsrFile:
    """An emulated per-core MSR device (``/dev/cpu/<n>/msr``).

    Only MSR 0x1A4 is modelled; other registers read as zero and
    reject writes, which is enough to mirror the paper's prefetcher
    scripts.
    """

    def __init__(self, core: int = 0):
        if core < 0:
            raise ValueError("core must be non-negative")
        self.core = core
        self._registers: dict[int, int] = {MSR_MISC_FEATURE_CONTROL: 0}

    def read(self, register: int) -> int:
        """``rdmsr``: read a register (unknown registers read 0)."""
        return self._registers.get(register, 0)

    def write(self, register: int, value: int) -> None:
        """``wrmsr``: write a register."""
        if register != MSR_MISC_FEATURE_CONTROL:
            raise PermissionError(
                f"msr {register:#x} is not modelled; only "
                f"{MSR_MISC_FEATURE_CONTROL:#x} (prefetcher control) is"
            )
        if not 0 <= value <= ALL_PREFETCHERS_MASK:
            raise ValueError(
                f"prefetcher-control value must be in [0, {ALL_PREFETCHERS_MASK:#x}]"
            )
        self._registers[register] = value

    @property
    def prefetchers(self) -> PrefetcherConfig:
        """The configuration the current register value selects."""
        return config_from_msr(self.read(MSR_MISC_FEATURE_CONTROL))

    def disable_all_prefetchers(self) -> None:
        self.write(MSR_MISC_FEATURE_CONTROL, ALL_PREFETCHERS_MASK)

    def enable_all_prefetchers(self) -> None:
        self.write(MSR_MISC_FEATURE_CONTROL, 0)

    def apply(self, config: PrefetcherConfig) -> None:
        """Set the register so that exactly ``config`` is active."""
        self.write(MSR_MISC_FEATURE_CONTROL, msr_from_config(config))
