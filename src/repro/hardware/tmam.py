"""Top-Down Micro-architecture Analysis (TMAM) cycle containers.

The paper examines CPU cycles at two levels (Section 2, "VTune"):
first Retiring vs Stall cycles, then the Stall cycles split into five
components: Branch mispredictions, Icache, Decoding, Dcache and
Execution.  :class:`CycleBreakdown` is the common currency between the
cycle model, the profiler and the figure harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

#: Stall components in the order the paper's figures stack them.
STALL_COMPONENTS = ("execution", "dcache", "decoding", "icache", "branch_misp")
COMPONENTS = ("retiring",) + STALL_COMPONENTS


@dataclass(frozen=True)
class CycleBreakdown:
    """CPU cycles attributed to retiring and the five stall classes.

    All values are in core cycles.  Instances are immutable; arithmetic
    helpers return new instances so experiment code can aggregate
    per-operator breakdowns safely.
    """

    retiring: float = 0.0
    branch_misp: float = 0.0
    icache: float = 0.0
    decoding: float = 0.0
    dcache: float = 0.0
    execution: float = 0.0

    def __post_init__(self) -> None:
        for component in fields(self):
            value = getattr(self, component.name)
            if value < 0:
                raise ValueError(f"{component.name} cycles must be non-negative")

    @property
    def total(self) -> float:
        return sum(getattr(self, name) for name in COMPONENTS)

    @property
    def stall_cycles(self) -> float:
        return sum(getattr(self, name) for name in STALL_COMPONENTS)

    @property
    def stall_ratio(self) -> float:
        """Fraction of CPU cycles spent on stalls (first-level view)."""
        total = self.total
        return self.stall_cycles / total if total else 0.0

    @property
    def retiring_ratio(self) -> float:
        total = self.total
        return self.retiring / total if total else 0.0

    def cycle_shares(self) -> dict[str, float]:
        """Each component as a fraction of total cycles (Figures 1/3/...)."""
        total = self.total
        if not total:
            return {name: 0.0 for name in COMPONENTS}
        return {name: getattr(self, name) / total for name in COMPONENTS}

    def stall_shares(self) -> dict[str, float]:
        """Each stall component as a fraction of stall cycles
        (Figures 2/4/...)."""
        stalls = self.stall_cycles
        if not stalls:
            return {name: 0.0 for name in STALL_COMPONENTS}
        return {name: getattr(self, name) / stalls for name in STALL_COMPONENTS}

    def dominant_stall(self) -> str:
        """Name of the largest stall component."""
        return max(STALL_COMPONENTS, key=lambda name: getattr(self, name))

    def __add__(self, other: "CycleBreakdown") -> "CycleBreakdown":
        if not isinstance(other, CycleBreakdown):
            return NotImplemented
        return CycleBreakdown(
            **{name: getattr(self, name) + getattr(other, name) for name in COMPONENTS}
        )

    def scaled(self, factor: float) -> "CycleBreakdown":
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CycleBreakdown(
            **{name: getattr(self, name) * factor for name in COMPONENTS}
        )

    def normalized_to(self, base_total: float) -> "CycleBreakdown":
        """Scale so that totals are expressed relative to ``base_total``
        (used for the paper's normalised response-time figures)."""
        if base_total <= 0:
            raise ValueError("base_total must be positive")
        return self.scaled(1.0 / base_total)

    def with_components(self, **overrides: float) -> "CycleBreakdown":
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENTS}

    @classmethod
    def zero(cls) -> "CycleBreakdown":
        return cls()

    @classmethod
    def sum(cls, breakdowns) -> "CycleBreakdown":
        """Aggregate an iterable of breakdowns."""
        result = cls.zero()
        for breakdown in breakdowns:
            result = result + breakdown
        return result
