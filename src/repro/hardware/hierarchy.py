"""Three-level data-cache hierarchy with configurable prefetchers.

Replays a byte-address stream through L1D -> L2 -> L3 (inclusive on
Broadwell) and accounts the load-to-use latency of every access, the
same structure the paper's VTune memory-access analysis observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cache import SetAssociativeCache
from repro.hardware.prefetcher import (
    NextLinePrefetcher,
    PrefetcherConfig,
    StreamerPrefetcher,
)
from repro.hardware.spec import ServerSpec


@dataclass
class HierarchyStats:
    """Aggregate statistics for a replayed access stream."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    memory_accesses: int = 0
    total_latency_cycles: float = 0.0
    lines_from_memory: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return 1.0 - self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def memory_miss_rate(self) -> float:
        """Fraction of accesses served from DRAM."""
        return self.memory_accesses / self.accesses if self.accesses else 0.0

    @property
    def avg_latency_cycles(self) -> float:
        return self.total_latency_cycles / self.accesses if self.accesses else 0.0


@dataclass
class _LevelBundle:
    cache: SetAssociativeCache
    prefetchers: list = field(default_factory=list)


class CacheHierarchy:
    """L1D/L2/L3 hierarchy for one core.

    ``access(addr)`` returns the load-to-use latency in cycles for that
    access and updates per-level statistics.  Prefetchers observe the
    demand stream at their level and install lines into their cache
    (and, for L2 prefetchers on an inclusive hierarchy, into L3 as
    well, matching where the hardware fills prefetched lines).
    """

    def __init__(self, spec: ServerSpec, config: PrefetcherConfig | None = None):
        self.spec = spec
        self.config = config or PrefetcherConfig.all_enabled()
        self.l1 = SetAssociativeCache(spec.l1d)
        self.l2 = SetAssociativeCache(spec.l2)
        self.l3 = SetAssociativeCache(spec.l3)
        self.stats = HierarchyStats()
        self._l1_prefetchers = []
        self._l2_prefetchers = []
        if self.config.l1_next_line:
            self._l1_prefetchers.append(NextLinePrefetcher(self.l1))
        if self.config.l1_streamer:
            self._l1_prefetchers.append(StreamerPrefetcher(self.l1, degree=2))
        if self.config.l2_next_line:
            self._l2_prefetchers.append(NextLinePrefetcher(self.l2))
        if self.config.l2_streamer:
            self._l2_prefetchers.append(StreamerPrefetcher(self.l2, degree=8))

    def access(self, addr: int) -> float:
        """Demand load of ``addr``; returns load-to-use latency in cycles."""
        spec = self.spec
        line = self.l1.line_of(addr)
        self.stats.accesses += 1
        latency = spec.l1_access_cycles

        l1_hit = self.l1.access_line(line)
        for prefetcher in self._l1_prefetchers:
            prefetcher.on_access(line, l1_hit)
        if l1_hit:
            self.stats.l1_hits += 1
            self.stats.total_latency_cycles += latency
            return latency

        latency += spec.l1d.miss_latency_cycles
        l2_hit = self.l2.access_line(line)
        for prefetcher in self._l2_prefetchers:
            prefetcher.on_access(line, l2_hit)
        if l2_hit:
            self.stats.l2_hits += 1
            self.stats.total_latency_cycles += latency
            return latency

        latency += spec.l2.miss_latency_cycles
        if self.l3.access_line(line):
            self.stats.l3_hits += 1
            self.stats.total_latency_cycles += latency
            return latency

        latency += spec.l3.miss_latency_cycles
        self.stats.memory_accesses += 1
        self.stats.lines_from_memory += 1
        self.stats.total_latency_cycles += latency
        return latency

    def replay(self, addresses) -> HierarchyStats:
        """Replay a full address stream; returns the aggregate stats.

        Large streams are dispatched to the batch kernels in
        :mod:`repro.hardware.fastsim`, which report statistics identical
        to this per-event loop; set ``REPRO_REFERENCE_SIM=1`` to force
        the reference path.
        """
        from repro.hardware import fastsim

        addresses = np.asarray(addresses)
        if len(addresses) >= fastsim.MIN_BATCH_EVENTS and not fastsim.use_reference():
            fastsim.replay_hierarchy(self, addresses)
            return self.stats
        for addr in addresses:
            self.access(int(addr))
        return self.stats

    def prefetches_issued(self) -> int:
        return sum(
            prefetcher.issued
            for prefetcher in (*self._l1_prefetchers, *self._l2_prefetchers)
        )

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.l3.reset()
        self.stats = HierarchyStats()
        for prefetcher in (*self._l1_prefetchers, *self._l2_prefetchers):
            prefetcher.reset()
