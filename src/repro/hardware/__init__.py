"""Hardware substrate: machine specs, caches, prefetchers, branch
prediction, memory system, execution ports and TMAM cycle containers."""

from repro.hardware.spec import (
    BROADWELL,
    CACHE_LINE_BYTES,
    GB,
    KB,
    MB,
    PAGE_BYTES,
    SKYLAKE,
    BandwidthSpec,
    CacheSpec,
    PortSpec,
    ServerSpec,
)
from repro.hardware.cache import CacheStats, SetAssociativeCache
from repro.hardware.prefetcher import (
    NextLinePrefetcher,
    PrefetcherConfig,
    StreamerPrefetcher,
)
from repro.hardware.hierarchy import CacheHierarchy, HierarchyStats
from repro.hardware.branch import (
    GSharePredictor,
    TwoBitCounter,
    conjunction_mispredict_rate,
    two_bit_mispredict_rate,
    two_bit_stationary_distribution,
)
from repro.hardware.memory import (
    BandwidthReport,
    LatencyReport,
    MemoryLatencyChecker,
    MemorySystem,
)
from repro.hardware.ports import ExecutionPorts, OpCounts
from repro.hardware.tmam import COMPONENTS, STALL_COMPONENTS, CycleBreakdown
from repro.hardware.topdown import TopDownNode, TopDownTree
from repro.hardware.msr import (
    ALL_PREFETCHERS_MASK,
    MSR_MISC_FEATURE_CONTROL,
    MsrFile,
    config_from_msr,
    msr_from_config,
)

__all__ = [
    "ALL_PREFETCHERS_MASK",
    "BROADWELL",
    "SKYLAKE",
    "CACHE_LINE_BYTES",
    "PAGE_BYTES",
    "KB",
    "MB",
    "GB",
    "BandwidthReport",
    "BandwidthSpec",
    "CacheHierarchy",
    "CacheSpec",
    "CacheStats",
    "COMPONENTS",
    "CycleBreakdown",
    "ExecutionPorts",
    "GSharePredictor",
    "HierarchyStats",
    "LatencyReport",
    "MemoryLatencyChecker",
    "MemorySystem",
    "MSR_MISC_FEATURE_CONTROL",
    "MsrFile",
    "NextLinePrefetcher",
    "OpCounts",
    "PortSpec",
    "PrefetcherConfig",
    "ServerSpec",
    "SetAssociativeCache",
    "STALL_COMPONENTS",
    "StreamerPrefetcher",
    "TopDownNode",
    "TopDownTree",
    "TwoBitCounter",
    "config_from_msr",
    "msr_from_config",
    "conjunction_mispredict_rate",
    "two_bit_mispredict_rate",
    "two_bit_stationary_distribution",
]
