"""Machine specifications for the servers profiled in the paper.

Table 1 of the paper describes the Intel Broadwell server used for all
experiments except SIMD; Section 2 ("Hardware") describes the Skylake
server used for the AVX-512 experiments.  Both are captured here as
:class:`ServerSpec` instances so that every model in :mod:`repro.core`
consumes machine parameters the same way the real measurements depended
on the real machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096


@dataclass(frozen=True)
class CacheSpec:
    """Static description of one cache level.

    ``miss_latency_cycles`` is the extra latency paid by a miss at this
    level to reach the next level, matching Table 1's presentation
    (L1: 16 cycles, L2: 26 cycles, L3: 160 cycles).
    """

    name: str
    size_bytes: int
    miss_latency_cycles: float
    associativity: int = 8
    line_bytes: int = CACHE_LINE_BYTES
    inclusive: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ValueError(f"{self.name}: size must be a multiple of the line size")
        n_lines = self.size_bytes // self.line_bytes
        if self.associativity <= 0 or n_lines % self.associativity:
            raise ValueError(f"{self.name}: lines must divide evenly into ways")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class BandwidthSpec:
    """Maximum attainable memory bandwidths, in GB/s, as measured by
    Intel's Memory Latency Checker on the real machines (Table 1)."""

    per_core_seq_gbps: float
    per_core_rand_gbps: float
    per_socket_seq_gbps: float
    per_socket_rand_gbps: float

    def __post_init__(self) -> None:
        for name in (
            "per_core_seq_gbps",
            "per_core_rand_gbps",
            "per_socket_seq_gbps",
            "per_socket_rand_gbps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def per_core(self, access_pattern: str) -> float:
        """Per-core bandwidth for ``"sequential"`` or ``"random"`` access."""
        return self._select(access_pattern, self.per_core_seq_gbps, self.per_core_rand_gbps)

    def per_socket(self, access_pattern: str) -> float:
        """Per-socket bandwidth for ``"sequential"`` or ``"random"`` access."""
        return self._select(
            access_pattern, self.per_socket_seq_gbps, self.per_socket_rand_gbps
        )

    @staticmethod
    def _select(access_pattern: str, seq: float, rand: float) -> float:
        if access_pattern == "sequential":
            return seq
        if access_pattern == "random":
            return rand
        raise ValueError(f"unknown access pattern: {access_pattern!r}")


@dataclass(frozen=True)
class PortSpec:
    """Execution-port layout of the core.

    Broadwell exposes eight issue ports, four of which carry an ALU
    (Section 3 cites the Intel optimisation manual [12]).  SIMD work is
    dispatched on a smaller set of vector ports.
    """

    n_ports: int = 8
    alu_ports: int = 4
    load_ports: int = 2
    store_ports: int = 1
    simd_ports: int = 2
    simd_width_bits: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.alu_ports <= self.n_ports:
            raise ValueError("alu_ports must be between 1 and n_ports")
        if self.simd_width_bits % 64:
            raise ValueError("simd_width_bits must be a multiple of 64")

    @property
    def simd_lanes_64(self) -> int:
        """Number of 64-bit lanes in one SIMD register."""
        return self.simd_width_bits // 64


@dataclass(frozen=True)
class ServerSpec:
    """Full description of a profiled server.

    The defaults mirror the paper's Broadwell box; :data:`BROADWELL` and
    :data:`SKYLAKE` are the two concrete machines.
    """

    name: str
    clock_ghz: float
    sockets: int
    cores_per_socket: int
    l1i: CacheSpec
    l1d: CacheSpec
    l2: CacheSpec
    l3: CacheSpec
    bandwidth: BandwidthSpec
    memory_bytes: int
    ports: PortSpec = field(default_factory=PortSpec)
    issue_width: int = 4
    decode_width: int = 4
    branch_mispredict_penalty: float = 16.0
    line_fill_buffers: int = 10
    l1_access_cycles: float = 4.0
    hyper_threading: bool = False
    turbo_boost: bool = False

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("core counts must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def cycles_per_second(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.cycles_per_second

    def cycles_to_ms(self, cycles: float) -> float:
        return self.cycles_to_seconds(cycles) * 1e3

    @property
    def l2_hit_latency(self) -> float:
        """Load-to-use latency of an L2 hit (L1 access + L1 miss)."""
        return self.l1_access_cycles + self.l1d.miss_latency_cycles

    @property
    def l3_hit_latency(self) -> float:
        """Load-to-use latency of an L3 hit."""
        return self.l2_hit_latency + self.l2.miss_latency_cycles

    @property
    def memory_latency_cycles(self) -> float:
        """Load-to-use latency of a DRAM access (all caches missed)."""
        return self.l3_hit_latency + self.l3.miss_latency_cycles

    @property
    def memory_latency_ns(self) -> float:
        return self.memory_latency_cycles / self.clock_ghz

    def bytes_per_cycle(self, gbps: float) -> float:
        """Convert a GB/s figure into bytes per core cycle."""
        return gbps * 1e9 / self.cycles_per_second

    def gbps(self, bytes_per_cycle: float) -> float:
        """Convert bytes per core cycle into GB/s."""
        return bytes_per_cycle * self.cycles_per_second / 1e9

    def with_hyper_threading(self, enabled: bool = True) -> "ServerSpec":
        """Return a copy with hyper-threading toggled (Section 10)."""
        return replace(self, hyper_threading=enabled)


BROADWELL = ServerSpec(
    name="Intel Xeon E5-2680 v4 (Broadwell)",
    clock_ghz=2.40,
    sockets=2,
    cores_per_socket=14,
    l1i=CacheSpec("L1I", 32 * KB, miss_latency_cycles=16.0),
    l1d=CacheSpec("L1D", 32 * KB, miss_latency_cycles=16.0),
    l2=CacheSpec("L2", 256 * KB, miss_latency_cycles=26.0),
    l3=CacheSpec(
        "L3", 35 * MB, miss_latency_cycles=160.0, associativity=20, inclusive=True
    ),
    bandwidth=BandwidthSpec(
        per_core_seq_gbps=12.0,
        per_core_rand_gbps=7.0,
        per_socket_seq_gbps=66.0,
        per_socket_rand_gbps=60.0,
    ),
    memory_bytes=256 * GB,
    ports=PortSpec(simd_width_bits=256),
)
"""The Broadwell server of Table 1 (all experiments except SIMD)."""


SKYLAKE = ServerSpec(
    name="Intel Xeon Skylake-SP",
    clock_ghz=2.10,
    sockets=2,
    cores_per_socket=14,
    l1i=CacheSpec("L1I", 32 * KB, miss_latency_cycles=16.0),
    l1d=CacheSpec("L1D", 32 * KB, miss_latency_cycles=16.0),
    l2=CacheSpec("L2", 1 * MB, miss_latency_cycles=28.0, associativity=16),
    l3=CacheSpec(
        "L3", 16 * MB, miss_latency_cycles=170.0, associativity=16, inclusive=False
    ),
    bandwidth=BandwidthSpec(
        per_core_seq_gbps=10.0,
        per_core_rand_gbps=7.0,
        per_socket_seq_gbps=87.0,
        per_socket_rand_gbps=60.0,
    ),
    memory_bytes=192 * GB,
    ports=PortSpec(simd_width_bits=512),
)
"""The Skylake server of Section 2 used for the AVX-512 experiments:
larger L2 (1 MB), smaller non-inclusive L3 (16 MB), lower per-core
(10 GB/s) and higher per-socket (87 GB/s) sequential bandwidth."""
