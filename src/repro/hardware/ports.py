"""Execution-port pressure model.

Section 3 notes that the Broadwell core has eight execution ports, four
with ALUs, yet arithmetic-heavy analytical loops still saturate them.
:class:`ExecutionPorts` converts operation counts into the minimum
number of issue cycles dictated by each port group; the excess over the
retirement-bound cycles is what TMAM reports as Execution (core-bound)
stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import PortSpec


@dataclass(frozen=True)
class OpCounts:
    """Dynamic operation counts of an instruction stream."""

    alu_ops: float = 0.0
    load_ops: float = 0.0
    store_ops: float = 0.0
    simd_ops: float = 0.0
    hash_ops: float = 0.0  # multiply/shift chains; long-latency ALU work

    def scaled(self, factor: float) -> "OpCounts":
        return OpCounts(
            alu_ops=self.alu_ops * factor,
            load_ops=self.load_ops * factor,
            store_ops=self.store_ops * factor,
            simd_ops=self.simd_ops * factor,
            hash_ops=self.hash_ops * factor,
        )


class ExecutionPorts:
    """Minimum-issue-cycle calculator for a port layout.

    Hash operations are modelled as ALU operations with a longer
    effective occupancy (integer multiply: 3-cycle latency, 1/cycle
    throughput on one port only), which is what makes hash-heavy
    operators core-bound in the paper's join and group-by experiments.
    """

    #: Ports able to execute an integer multiply (port 1 on Broadwell).
    MUL_PORTS = 1
    #: Effective throughput occupancy of one hash op (multiply + mix
    #: chain: ~3-cycle imul plus shifts on a single port).
    HASH_OCCUPANCY = 4.0

    def __init__(self, spec: PortSpec):
        self.spec = spec

    def alu_cycles(self, counts: OpCounts) -> float:
        """Cycles the scalar ALU ports need for the op mix."""
        plain = counts.alu_ops / self.spec.alu_ports
        hashed = counts.hash_ops * self.HASH_OCCUPANCY / self.MUL_PORTS
        return plain + hashed

    def load_cycles(self, counts: OpCounts) -> float:
        return counts.load_ops / self.spec.load_ports

    def store_cycles(self, counts: OpCounts) -> float:
        return counts.store_ops / self.spec.store_ports

    def simd_cycles(self, counts: OpCounts) -> float:
        return counts.simd_ops / self.spec.simd_ports

    def min_issue_cycles(self, counts: OpCounts) -> float:
        """Lower bound on execution cycles from port pressure alone
        (the binding port group)."""
        return max(
            self.alu_cycles(counts),
            self.load_cycles(counts),
            self.store_cycles(counts),
            self.simd_cycles(counts),
        )

    def binding_port_group(self, counts: OpCounts) -> str:
        """Which port group binds the op mix (diagnostic helper)."""
        cycles = {
            "alu": self.alu_cycles(counts),
            "load": self.load_cycles(counts),
            "store": self.store_cycles(counts),
            "simd": self.simd_cycles(counts),
        }
        return max(cycles, key=cycles.get)
