"""Memory-system model: latency, bandwidth and contention.

Provides the quantities the paper obtains from Intel's Memory Latency
Checker (MLC [10]): idle access latencies per cache level and maximum
single-core / per-socket bandwidths for sequential and random streams
(Table 1), plus the queueing behaviour used by the cycle model when
demand approaches the bandwidth roof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import ServerSpec


@dataclass(frozen=True)
class LatencyReport:
    """Idle load-to-use latencies, in cycles and nanoseconds."""

    l1_cycles: float
    l2_cycles: float
    l3_cycles: float
    memory_cycles: float
    clock_ghz: float

    def as_ns(self, cycles: float) -> float:
        return cycles / self.clock_ghz

    @property
    def memory_ns(self) -> float:
        return self.as_ns(self.memory_cycles)


@dataclass(frozen=True)
class BandwidthReport:
    """Maximum attainable bandwidths in GB/s (the MLC numbers)."""

    per_core_sequential: float
    per_core_random: float
    per_socket_sequential: float
    per_socket_random: float


class MemorySystem:
    """Bandwidth/latency behaviour of one socket of a server.

    The effective service rate degrades smoothly as offered load
    approaches the roof: latency under load is scaled by an M/M/1-style
    factor capped to keep the model stable at saturation.
    """

    #: Latency inflation cap at full bandwidth utilisation.
    MAX_QUEUE_FACTOR = 3.0

    def __init__(self, spec: ServerSpec):
        self.spec = spec

    def max_bandwidth_gbps(self, access_pattern: str, cores: int = 1) -> float:
        """Maximum attainable bandwidth for ``cores`` cooperating cores.

        Scales linearly with cores until the socket roof is reached —
        exactly the shape of Figures 29 and 30's MAX line.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        per_core = self.spec.bandwidth.per_core(access_pattern)
        per_socket = self.spec.bandwidth.per_socket(access_pattern)
        return min(per_core * cores, per_socket)

    def utilization(self, demand_gbps: float, access_pattern: str, cores: int = 1) -> float:
        """Offered load as a fraction of the attainable roof (can be >1)."""
        if demand_gbps < 0:
            raise ValueError("demand must be non-negative")
        return demand_gbps / self.max_bandwidth_gbps(access_pattern, cores)

    def queueing_factor(self, utilization: float) -> float:
        """Latency inflation under load.

        An M/M/1-like ``1 / (1 - rho)`` curve, linearised near zero and
        capped at :data:`MAX_QUEUE_FACTOR` so that saturated streams see
        a finite (but painful) latency blow-up.
        """
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        rho = min(utilization, 0.999)
        factor = 1.0 / (1.0 - rho * (1.0 - 1.0 / self.MAX_QUEUE_FACTOR))
        return min(factor, self.MAX_QUEUE_FACTOR)

    def loaded_latency_cycles(
        self, demand_gbps: float, access_pattern: str, cores: int = 1
    ) -> float:
        """DRAM load-to-use latency under the given offered load."""
        rho = min(self.utilization(demand_gbps, access_pattern, cores), 1.0)
        return self.spec.memory_latency_cycles * self.queueing_factor(rho)

    def transfer_cycles(
        self, n_bytes: float, access_pattern: str, cores: int = 1, demand_gbps: float | None = None
    ) -> float:
        """Cycles needed to move ``n_bytes`` at the attainable roof.

        If ``demand_gbps`` is given and below the roof, the transfer is
        paced by the demand instead (the stream is not bandwidth-bound).
        """
        roof = self.max_bandwidth_gbps(access_pattern, cores)
        rate_gbps = roof if demand_gbps is None else min(demand_gbps, roof)
        if rate_gbps <= 0:
            raise ValueError("transfer rate must be positive")
        seconds = n_bytes / (rate_gbps * 1e9)
        return seconds * self.spec.cycles_per_second

    def compression_speedup(
        self,
        raw_bytes: float,
        encoded_bytes: float,
        access_pattern: str = "sequential",
        cores: int = 1,
    ) -> float:
        """Upper-bound speedup of a *bandwidth-bound* transfer when the
        stream shrinks from ``raw_bytes`` to ``encoded_bytes``
        (compressed column widths, :mod:`repro.storage.encoding`).

        A scan pinned at the roof gains the full byte ratio; operators
        that are not bandwidth-bound gain less, which the cycle model
        decides when fed a profile rewritten via
        ``WorkProfile.with_sequential_scaled``.
        """
        if raw_bytes < 0 or encoded_bytes <= 0:
            raise ValueError("byte volumes must be positive")
        return self.transfer_cycles(
            raw_bytes, access_pattern, cores
        ) / self.transfer_cycles(encoded_bytes, access_pattern, cores)

    def encoded_agg_speedup(
        self,
        raw_bytes: float,
        code_bytes: float,
        decoded_bytes: float = 0.0,
        access_pattern: str = "sequential",
        cores: int = 1,
    ) -> float:
        """Upper-bound speedup of a bandwidth-bound aggregation whose
        scan stream is split by the morph decision
        (``details["encoded_agg"]``): ``code_bytes`` stream at encoded
        widths (predicates, keys and measures aggregated in the code
        domain) while ``decoded_bytes`` stay at logical widths (raw
        columns and measures the decision kept decoded, e.g. per-row
        derived expressions).

        Before encoded aggregation the compression model charged every
        encoded column at code width even though measures were decoded
        before summation; splitting the stream keeps modeled vs
        measured honest.
        """
        if raw_bytes < 0 or code_bytes < 0 or decoded_bytes < 0:
            raise ValueError("byte volumes must be non-negative")
        streamed = code_bytes + decoded_bytes
        if streamed <= 0:
            raise ValueError("streamed volume must be positive")
        return self.transfer_cycles(
            raw_bytes, access_pattern, cores
        ) / self.transfer_cycles(streamed, access_pattern, cores)

    def pruning_speedup(
        self,
        total_bytes: float,
        kept_bytes: float,
        access_pattern: str = "sequential",
        cores: int = 1,
    ) -> float:
        """Upper-bound speedup of a *bandwidth-bound* scan when zone-map
        pruning (:mod:`repro.core.pruning`) shrinks the streamed volume
        from ``total_bytes`` to ``kept_bytes``.

        Same shape as :meth:`compression_speedup` -- a scan at the roof
        gains the full byte ratio; the two compose multiplicatively when
        pruning skips chunks of already-compressed columns.
        """
        if total_bytes < 0 or kept_bytes <= 0:
            raise ValueError("byte volumes must be positive")
        return self.transfer_cycles(
            total_bytes, access_pattern, cores
        ) / self.transfer_cycles(kept_bytes, access_pattern, cores)


class MemoryLatencyChecker:
    """Reproduces the MLC measurements reported in Table 1 directly from
    the machine model (the paper uses the real tool to obtain cache
    latencies and maximum bandwidths)."""

    def __init__(self, spec: ServerSpec):
        self.spec = spec
        self.memory = MemorySystem(spec)

    def measure_latencies(self) -> LatencyReport:
        spec = self.spec
        return LatencyReport(
            l1_cycles=spec.l1_access_cycles,
            l2_cycles=spec.l2_hit_latency,
            l3_cycles=spec.l3_hit_latency,
            memory_cycles=spec.memory_latency_cycles,
            clock_ghz=spec.clock_ghz,
        )

    def measure_bandwidths(self) -> BandwidthReport:
        return BandwidthReport(
            per_core_sequential=self.memory.max_bandwidth_gbps("sequential", 1),
            per_core_random=self.memory.max_bandwidth_gbps("random", 1),
            per_socket_sequential=self.memory.max_bandwidth_gbps(
                "sequential", self.spec.cores_per_socket
            ),
            per_socket_random=self.memory.max_bandwidth_gbps(
                "random", self.spec.cores_per_socket
            ),
        )

    def table1_rows(self) -> dict[str, str]:
        """Render the derived rows of Table 1 for the configured server."""
        spec = self.spec
        latency = self.measure_latencies()
        bandwidth = self.measure_bandwidths()
        return {
            "Processor": spec.name,
            "#sockets": str(spec.sockets),
            "#cores per socket": str(spec.cores_per_socket),
            "Hyper-threading": "On" if spec.hyper_threading else "Off",
            "Turbo-boost": "On" if spec.turbo_boost else "Off",
            "Clock speed": f"{spec.clock_ghz:.2f}GHz",
            "Per-core bandwidth": (
                f"{bandwidth.per_core_sequential:.0f}GB/s (sequential) / "
                f"{bandwidth.per_core_random:.0f}GB/s (random)"
            ),
            "Per-socket bandwidth": (
                f"{bandwidth.per_socket_sequential:.0f}GB/s (sequential) / "
                f"{bandwidth.per_socket_random:.0f}GB/s (random)"
            ),
            "L1I / L1D (per core)": (
                f"{spec.l1i.size_bytes // 1024}KB / {spec.l1d.size_bytes // 1024}KB, "
                f"{spec.l1d.miss_latency_cycles:.0f}-cycle miss latency"
            ),
            "L2 (per core)": (
                f"{spec.l2.size_bytes // 1024}KB, "
                f"{spec.l2.miss_latency_cycles:.0f}-cycle miss latency"
            ),
            "L3 (shared)": (
                f"{'(inclusive) ' if spec.l3.inclusive else ''}"
                f"{spec.l3.size_bytes // (1024 * 1024)}MB, "
                f"{spec.l3.miss_latency_cycles:.0f}-cycle miss latency"
            ),
            "Memory": f"{spec.memory_bytes // (1024 ** 3)}GB",
            "Memory latency": f"{latency.memory_ns:.0f}ns",
        }
