"""Trace-driven set-associative cache with LRU replacement.

Used by :mod:`repro.core.tracesim` to replay sampled address streams the
way the hardware caches of the profiled Broadwell server would see them
(Section 9's prefetcher study flips prefetchers on and off around exactly
this structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hardware.spec import CacheSpec


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_inserts: int = 0
    prefetch_hits: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.prefetch_inserts = 0
        self.prefetch_hits = 0
        self.evictions = 0


class SetAssociativeCache:
    """A classic set-associative, write-allocate, LRU cache model.

    Addresses are byte addresses; the cache operates on aligned lines.
    Lines inserted by a prefetcher are tracked separately so that
    prefetch coverage (the fraction of would-be misses converted into
    hits) can be reported per level.
    """

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self._line_shift = spec.line_bytes.bit_length() - 1
        if 1 << self._line_shift != spec.line_bytes:
            raise ValueError("line size must be a power of two")
        self._n_sets = spec.n_sets
        self._ways = spec.associativity
        # One dict per set: line_number -> (lru_tick, was_prefetched).
        self._sets: list[dict[int, list]] = [{} for _ in range(self._n_sets)]
        self._tick = 0
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        """Line number containing byte address ``addr``."""
        return addr >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self._n_sets

    def access(self, addr: int) -> bool:
        """Demand access; returns True on hit.  Misses allocate the line."""
        line = self.line_of(addr)
        return self.access_line(line)

    def access_line(self, line: int) -> bool:
        """Demand access by line number; returns True on hit."""
        self._tick += 1
        self.stats.accesses += 1
        entry = self._sets[self._set_index(line)].get(line)
        if entry is not None:
            if entry[1]:
                self.stats.prefetch_hits += 1
                entry[1] = False
            entry[0] = self._tick
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._install(line, prefetched=False)
        return False

    def prefetch_line(self, line: int) -> bool:
        """Install a line on behalf of a prefetcher.

        Returns True if the line was newly installed (i.e. the prefetch
        was not redundant).
        """
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            return False
        self._tick += 1
        self.stats.prefetch_inserts += 1
        self._install(line, prefetched=True)
        return True

    def contains_line(self, line: int) -> bool:
        return line in self._sets[self._set_index(line)]

    def contains(self, addr: int) -> bool:
        return self.contains_line(self.line_of(addr))

    def invalidate_line(self, line: int) -> bool:
        """Remove a line (used for inclusive-L3 back-invalidation)."""
        return self._sets[self._set_index(line)].pop(line, None) is not None

    def _install(self, line: int, prefetched: bool) -> None:
        cache_set = self._sets[self._set_index(line)]
        if len(cache_set) >= self._ways:
            victim = min(cache_set, key=lambda entry: cache_set[entry][0])
            del cache_set[victim]
            self.stats.evictions += 1
        cache_set[line] = [self._tick, prefetched]

    def resident_lines(self) -> Iterable[int]:
        """All line numbers currently cached (test/inspection helper)."""
        for cache_set in self._sets:
            yield from cache_set

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def reset(self) -> None:
        """Drop all contents and counters."""
        for cache_set in self._sets:
            cache_set.clear()
        self._tick = 0
        self.stats.reset()
