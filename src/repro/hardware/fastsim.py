"""Batch ("vector-at-a-time") kernels for the structural simulators.

The paper's own headline lesson -- vector-at-a-time execution amortises
per-tuple interpretation overhead (Tectorwise vs. the interpreters) --
applies to our measurement substrate too: the reference
:meth:`repro.hardware.hierarchy.CacheHierarchy.replay` and
:meth:`repro.hardware.branch.GSharePredictor.run` are tuple-at-a-time
Python loops.  This module provides batch implementations that consume
whole address/outcome arrays per call:

- :func:`replay_hierarchy` -- batch replay of an address stream through
  the three-level hierarchy.  Without prefetchers the per-set LRU
  simulations are fully vectorised across sets (a time-stepped numpy
  kernel over one matrix per level); with prefetchers enabled (whose
  next-line/streamer installs cross set boundaries mid-stream and
  therefore serialise the per-set state) a fused single-pass kernel
  inlines all three levels and the prefetchers into one tight loop over
  a pre-computed line array.
- :func:`gshare_run_batch` -- exact batch replay of a branch outcome
  stream: histories and table indices are computed vectorised, and the
  independent 2-bit counters are advanced per table entry (closed form
  for constant-outcome entries, a time-stepped numpy kernel for the
  rest).

Both kernels leave the simulator objects in a state equivalent to the
reference event loop (identical reported statistics, identical future
decisions) and are cross-checked against the reference models in
``tests/hardware/test_fastsim_equivalence.py``.  Setting
``REPRO_REFERENCE_SIM=1`` disables them and restores the per-event
reference path, which remains the oracle.

Note on float accumulation: the reference accumulates per-access
latencies one by one while the batch kernels compute ``count x
latency`` sums.  Both are exact (hence identical) whenever the cache
latencies are integer-valued floats, which holds for the modelled
Broadwell/Skylake servers.
"""

from __future__ import annotations

import os

import numpy as np

#: Below this many events the batch kernels gain nothing; the dispatch
#: helpers fall back to the reference loops.
MIN_BATCH_EVENTS = 32


def use_reference() -> bool:
    """True when ``REPRO_REFERENCE_SIM`` selects the per-event models."""
    return os.environ.get("REPRO_REFERENCE_SIM", "").strip().lower() in {
        "1", "true", "yes", "on",
    }


# ----------------------------------------------------------------------
# Set-associative LRU level kernel (vectorised across sets)
# ----------------------------------------------------------------------

def _simulate_level(cache, lines: np.ndarray):
    """Exact batch demand-access simulation of one cache level.

    ``lines`` is the level's demand line stream in time order.  Returns
    ``(hits, prefetch_hits, evictions)`` where ``hits`` is a boolean
    array aligned with ``lines``.  The cache's set contents are updated
    in place (LRU order preserved); counters are NOT updated here so
    the caller can account hierarchy-level statistics in one place.

    The kernel groups accesses by set (sets are independent without
    prefetchers), seeds one state row per touched set from the existing
    contents, and advances all sets simultaneously one access at a time
    -- the Python-level iteration count is the *maximum accesses per
    set*, not the stream length.
    """
    n = len(lines)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return empty, empty, 0
    ways = cache._ways
    n_sets = cache._n_sets
    set_ids = lines % n_sets

    # Group positions by set, preserving time order within each set.
    order = np.argsort(set_ids, kind="stable")
    sorted_sets = set_ids[order]
    sorted_lines = lines[order]

    # Collapse runs of repeated accesses to the same line within a
    # set's subsequence: after the first access of a run the line is
    # resident and MRU, so the repeats are guaranteed hits that leave
    # the set state unchanged.  (Stride-under-line-size streams shrink
    # ~8x here, which bounds the time-step loop below.)
    first_in_run = np.ones(n, dtype=bool)
    first_in_run[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (
        sorted_lines[1:] != sorted_lines[:-1]
    )
    run_heads = np.flatnonzero(first_in_run)
    c_sets = sorted_sets[run_heads]
    c_lines = sorted_lines[run_heads]
    m = len(run_heads)

    boundaries = np.flatnonzero(np.diff(c_sets)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [m]))
    touched = c_sets[group_starts]
    n_groups = len(touched)
    lengths = group_ends - group_starts

    # Per-group state: the ways of each touched set.  Empty ways hold
    # line -1 with tick -1 (older than anything, so they are filled
    # first, matching the reference's install-before-evict behaviour).
    way_lines = np.full((n_groups, ways), -1, dtype=np.int64)
    way_ticks = np.full((n_groups, ways), -1, dtype=np.int64)
    way_pref = np.zeros((n_groups, ways), dtype=bool)
    for g, set_id in enumerate(touched):
        entries = cache._sets[set_id]
        for w, (line, (tick, prefetched)) in enumerate(
            sorted(entries.items(), key=lambda item: item[1][0])
        ):
            way_lines[g, w] = line
            way_ticks[g, w] = w  # relative LRU order is all that matters
            way_pref[g, w] = prefetched

    # Access matrix coordinates: group row + step column.
    rows = np.repeat(np.arange(n_groups), lengths)
    cols = np.arange(m) - np.repeat(group_starts, lengths)
    max_len = int(lengths.max()) if n_groups else 0
    line_matrix = np.full((n_groups, max_len), -1, dtype=np.int64)
    line_matrix[rows, cols] = c_lines

    hits_matrix = np.zeros((n_groups, max_len), dtype=bool)
    pref_hits_matrix = np.zeros((n_groups, max_len), dtype=bool)
    evictions = 0
    group_range = np.arange(n_groups)
    for step in range(max_len):
        active = lengths > step
        current = line_matrix[:, step]
        match = way_lines == current[:, None]
        hit = match.any(axis=1) & active
        hits_matrix[:, step] = hit
        tick = ways + step  # strictly newer than every seeded tick
        if hit.any():
            hit_way = np.argmax(match, axis=1)
            pref_hit = hit & way_pref[group_range, hit_way]
            pref_hits_matrix[:, step] = pref_hit
            way_pref[group_range[pref_hit], hit_way[pref_hit]] = False
            way_ticks[group_range[hit], hit_way[hit]] = tick
        miss = active & ~hit
        if miss.any():
            victim = np.argmin(way_ticks, axis=1)
            miss_groups = group_range[miss]
            victim_ways = victim[miss]
            evictions += int(
                np.count_nonzero(way_lines[miss_groups, victim_ways] >= 0)
            )
            way_lines[miss_groups, victim_ways] = current[miss]
            way_ticks[miss_groups, victim_ways] = tick
            way_pref[miss_groups, victim_ways] = False

    # Scatter results back to stream order; collapsed repeats are hits.
    hits_sorted = np.ones(n, dtype=bool)
    hits_sorted[run_heads] = hits_matrix[rows, cols]
    hits = np.zeros(n, dtype=bool)
    hits[order] = hits_sorted
    pref_sorted = np.zeros(n, dtype=bool)
    pref_sorted[run_heads] = pref_hits_matrix[rows, cols]
    prefetch_hits = np.zeros(n, dtype=bool)
    prefetch_hits[order] = pref_sorted

    # Write the final contents back, preserving relative LRU order and
    # keeping every stored tick below the cache's future tick values.
    base = cache._tick + 1
    for g, set_id in enumerate(touched):
        entries = {}
        occupied = np.flatnonzero(way_lines[g] >= 0)
        for rank, w in enumerate(occupied[np.argsort(way_ticks[g][occupied])]):
            entries[int(way_lines[g, w])] = [base + rank, bool(way_pref[g, w])]
        cache._sets[set_id] = entries
    cache._tick += n + ways

    return hits, prefetch_hits, evictions


def _account_level(cache, n_accesses: int, hits: np.ndarray,
                   prefetch_hits: np.ndarray, evictions: int) -> int:
    """Fold one level's batch outcome into its CacheStats; returns the
    number of hits."""
    n_hits = int(np.count_nonzero(hits))
    stats = cache.stats
    stats.accesses += n_accesses
    stats.hits += n_hits
    stats.misses += n_accesses - n_hits
    stats.prefetch_hits += int(np.count_nonzero(prefetch_hits))
    stats.evictions += evictions
    return n_hits


def _replay_vectorized(hierarchy, lines: np.ndarray) -> None:
    """Batch replay without prefetchers: the three levels are chained
    vectorised kernels, each consuming the previous level's miss
    subsequence in stream order."""
    spec = hierarchy.spec
    n = len(lines)

    l1_hits, l1_pref, l1_evict = _simulate_level(hierarchy.l1, lines)
    _account_level(hierarchy.l1, n, l1_hits, l1_pref, l1_evict)

    l2_lines = lines[~l1_hits]
    l2_hits, l2_pref, l2_evict = _simulate_level(hierarchy.l2, l2_lines)
    _account_level(hierarchy.l2, len(l2_lines), l2_hits, l2_pref, l2_evict)

    l3_lines = l2_lines[~l2_hits]
    l3_hits, l3_pref, l3_evict = _simulate_level(hierarchy.l3, l3_lines)
    _account_level(hierarchy.l3, len(l3_lines), l3_hits, l3_pref, l3_evict)

    n_l1 = int(np.count_nonzero(l1_hits))
    n_l2 = int(np.count_nonzero(l2_hits))
    n_l3 = int(np.count_nonzero(l3_hits))
    n_mem = len(l3_lines) - n_l3

    stats = hierarchy.stats
    stats.accesses += n
    stats.l1_hits += n_l1
    stats.l2_hits += n_l2
    stats.l3_hits += n_l3
    stats.memory_accesses += n_mem
    stats.lines_from_memory += n_mem
    stats.total_latency_cycles += (
        n * spec.l1_access_cycles
        + (n - n_l1) * spec.l1d.miss_latency_cycles
        + len(l3_lines) * spec.l2.miss_latency_cycles
        + n_mem * spec.l3.miss_latency_cycles
    )


# ----------------------------------------------------------------------
# Fused single-pass hierarchy kernel (prefetchers enabled)
# ----------------------------------------------------------------------

def _replay_fused(hierarchy, lines: np.ndarray) -> None:
    """Batch replay with prefetchers: one tight loop over a
    pre-computed line array with all three levels, the next-line
    prefetchers and the streamers inlined as local state.

    Prefetch installs cross set boundaries mid-stream (line ``L`` in
    set ``s`` installs ``L+1`` into set ``s+1``), so the per-set
    decoupling of the vectorised kernel does not apply; this kernel
    instead removes the per-event method-dispatch and dataclass
    bookkeeping of the reference path while replaying the identical
    event sequence on the identical structures.
    """
    from repro.hardware.prefetcher import (
        LINES_PER_PAGE,
        NextLinePrefetcher,
        StreamerPrefetcher,
        _StreamTracker,
    )

    spec = hierarchy.spec
    l1, l2, l3 = hierarchy.l1, hierarchy.l2, hierarchy.l3
    l1_sets, l2_sets, l3_sets = l1._sets, l2._sets, l3._sets
    l1_nsets, l2_nsets, l3_nsets = l1._n_sets, l2._n_sets, l3._n_sets
    l1_ways, l2_ways, l3_ways = l1._ways, l2._ways, l3._ways
    tick1, tick2, tick3 = l1._tick, l2._tick, l3._tick

    # Per-level counter locals (folded back into the stats at the end).
    h1 = m1 = ph1 = pi1 = ev1 = 0
    h2 = m2 = ph2 = pi2 = ev2 = 0
    h3 = m3 = ph3 = pi3 = ev3 = 0

    l1_lat = spec.l1_access_cycles
    l2_lat = l1_lat + spec.l1d.miss_latency_cycles
    l3_lat = l2_lat + spec.l2.miss_latency_cycles
    mem_lat = l3_lat + spec.l3.miss_latency_cycles
    n_mem = 0
    latency_total = 0.0

    # Prefetcher state, keyed by (level_cache, kind).
    next_line = []  # (prefetcher, sets, n_sets, ways, level)
    streamers = []  # (prefetcher, sets, n_sets, ways, degree, trackers, max_trackers, level)
    for level, prefetchers in ((1, hierarchy._l1_prefetchers), (2, hierarchy._l2_prefetchers)):
        for prefetcher in prefetchers:
            target = prefetcher.target
            if isinstance(prefetcher, NextLinePrefetcher):
                next_line.append(
                    (prefetcher, target._sets, target._n_sets, target._ways, level)
                )
            elif isinstance(prefetcher, StreamerPrefetcher):
                streamers.append(
                    (prefetcher, target._sets, target._n_sets, target._ways,
                     prefetcher.degree, prefetcher._trackers,
                     prefetcher.max_trackers, level)
                )
            else:  # third-party prefetcher: no fused path for it
                raise NotImplementedError(type(prefetcher).__name__)

    def install(sets, n_sets, ways, line, tick, prefetched):
        """Inline of SetAssociativeCache._install; returns evictions."""
        cache_set = sets[line % n_sets]
        evicted = 0
        if len(cache_set) >= ways:
            victim = min(cache_set, key=lambda entry: cache_set[entry][0])
            del cache_set[victim]
            evicted = 1
        cache_set[line] = [tick, prefetched]
        return evicted

    for line in lines.tolist():
        # ---- L1 demand access -----------------------------------------
        tick1 += 1
        entry = l1_sets[line % l1_nsets].get(line)
        if entry is not None:
            if entry[1]:
                ph1 += 1
                entry[1] = False
            entry[0] = tick1
            h1 += 1
            l1_hit = True
        else:
            m1 += 1
            ev1 += install(l1_sets, l1_nsets, l1_ways, line, tick1, False)
            l1_hit = False

        # ---- L1 prefetchers observe the demand stream -----------------
        for prefetcher, sets, n_sets, ways, level in next_line:
            if level != 1 or l1_hit:
                continue
            candidate = line + 1
            if candidate not in sets[candidate % n_sets]:
                tick1 += 1
                pi1 += 1
                ev1 += install(sets, n_sets, ways, candidate, tick1, True)
                prefetcher.issued += 1
        for (prefetcher, sets, n_sets, ways, degree, trackers,
             max_trackers, level) in streamers:
            if level != 1:
                continue
            page = line // LINES_PER_PAGE
            tracker = trackers.get(page)
            if tracker is None:
                if len(trackers) >= max_trackers:
                    trackers.pop(next(iter(trackers)))
                trackers[page] = _StreamTracker(page=page, last_line=line)
                continue
            step = line - tracker.last_line
            if step == 0:
                continue
            direction = 1 if step > 0 else -1
            if direction == tracker.direction:
                tracker.confidence = min(tracker.confidence + 1, 4)
            else:
                tracker.direction = direction
                tracker.confidence = 1
            tracker.last_line = line
            if tracker.confidence >= 2:
                for distance in range(1, degree + 1):
                    candidate = line + direction * distance
                    if candidate // LINES_PER_PAGE != page:
                        break
                    if candidate not in sets[candidate % n_sets]:
                        tick1 += 1
                        pi1 += 1
                        ev1 += install(sets, n_sets, ways, candidate, tick1, True)
                        prefetcher.issued += 1

        if l1_hit:
            latency_total += l1_lat
            continue

        # ---- L2 demand access -----------------------------------------
        tick2 += 1
        entry = l2_sets[line % l2_nsets].get(line)
        if entry is not None:
            if entry[1]:
                ph2 += 1
                entry[1] = False
            entry[0] = tick2
            h2 += 1
            l2_hit = True
        else:
            m2 += 1
            ev2 += install(l2_sets, l2_nsets, l2_ways, line, tick2, False)
            l2_hit = False

        # ---- L2 prefetchers -------------------------------------------
        for prefetcher, sets, n_sets, ways, level in next_line:
            if level != 2 or l2_hit:
                continue
            candidate = line + 1
            if candidate not in sets[candidate % n_sets]:
                tick2 += 1
                pi2 += 1
                ev2 += install(sets, n_sets, ways, candidate, tick2, True)
                prefetcher.issued += 1
        for (prefetcher, sets, n_sets, ways, degree, trackers,
             max_trackers, level) in streamers:
            if level != 2:
                continue
            page = line // LINES_PER_PAGE
            tracker = trackers.get(page)
            if tracker is None:
                if len(trackers) >= max_trackers:
                    trackers.pop(next(iter(trackers)))
                trackers[page] = _StreamTracker(page=page, last_line=line)
                continue
            step = line - tracker.last_line
            if step == 0:
                continue
            direction = 1 if step > 0 else -1
            if direction == tracker.direction:
                tracker.confidence = min(tracker.confidence + 1, 4)
            else:
                tracker.direction = direction
                tracker.confidence = 1
            tracker.last_line = line
            if tracker.confidence >= 2:
                for distance in range(1, degree + 1):
                    candidate = line + direction * distance
                    if candidate // LINES_PER_PAGE != page:
                        break
                    if candidate not in sets[candidate % n_sets]:
                        tick2 += 1
                        pi2 += 1
                        ev2 += install(sets, n_sets, ways, candidate, tick2, True)
                        prefetcher.issued += 1

        if l2_hit:
            latency_total += l2_lat
            continue

        # ---- L3 demand access -----------------------------------------
        tick3 += 1
        entry = l3_sets[line % l3_nsets].get(line)
        if entry is not None:
            if entry[1]:
                ph3 += 1
                entry[1] = False
            entry[0] = tick3
            h3 += 1
            latency_total += l3_lat
        else:
            m3 += 1
            ev3 += install(l3_sets, l3_nsets, l3_ways, line, tick3, False)
            n_mem += 1
            latency_total += mem_lat

    l1._tick, l2._tick, l3._tick = tick1, tick2, tick3
    for cache, hits, misses, pref_hits, pref_inserts, evictions in (
        (l1, h1, m1, ph1, pi1, ev1),
        (l2, h2, m2, ph2, pi2, ev2),
        (l3, h3, m3, ph3, pi3, ev3),
    ):
        stats = cache.stats
        stats.accesses += hits + misses
        stats.hits += hits
        stats.misses += misses
        stats.prefetch_hits += pref_hits
        stats.prefetch_inserts += pref_inserts
        stats.evictions += evictions

    stats = hierarchy.stats
    stats.accesses += len(lines)
    stats.l1_hits += h1
    stats.l2_hits += h2
    stats.l3_hits += h3
    stats.memory_accesses += n_mem
    stats.lines_from_memory += n_mem
    stats.total_latency_cycles += latency_total


def replay_hierarchy(hierarchy, addresses: np.ndarray) -> None:
    """Batch replay of a byte-address stream through a hierarchy.

    Chooses the fully vectorised per-set kernel when no prefetchers are
    configured and the fused single-pass kernel otherwise.  Statistics
    and cache contents end up equivalent to the reference per-event
    loop.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    lines = addresses >> hierarchy.l1._line_shift
    if hierarchy._l1_prefetchers or hierarchy._l2_prefetchers:
        _replay_fused(hierarchy, lines)
    else:
        _replay_vectorized(hierarchy, lines)


# ----------------------------------------------------------------------
# Gshare batch kernel
# ----------------------------------------------------------------------

def _histories(initial: int, history_bits: int, outcomes: np.ndarray) -> np.ndarray:
    """Global-history register value before each branch, vectorised.

    The register before branch ``t`` holds the last ``history_bits``
    events of the sequence ``[initial history bits, outcomes[:t]]``,
    most recent in the LSB.
    """
    n = len(outcomes)
    if history_bits == 0:
        return np.zeros(n, dtype=np.int64)
    bits = np.empty(history_bits + n, dtype=np.int64)
    for j in range(history_bits):
        bits[j] = (initial >> (history_bits - 1 - j)) & 1
    bits[history_bits:] = outcomes
    windows = np.lib.stride_tricks.sliding_window_view(bits, history_bits)[:n]
    weights = 1 << np.arange(history_bits - 1, -1, -1, dtype=np.int64)
    return windows @ weights


def gshare_run_batch(predictor, pc: int, outcomes: np.ndarray) -> int:
    """Exact batch replay of one static branch's outcome stream.

    Updates ``predictor`` state in place (table counters, history,
    prediction counts) exactly as the per-event loop would, and returns
    the number of mispredictions added.

    The per-entry 2-bit counters are independent once the table index
    sequence is known, so the stream is grouped by index: entries whose
    outcome subsequence is constant are advanced in closed form, the
    rest advance one step per iteration of a numpy kernel vectorised
    across entries.
    """
    outcomes = np.asarray(outcomes, dtype=bool)
    n = len(outcomes)
    if n == 0:
        return 0
    histories = _histories(predictor._history, predictor.history_bits, outcomes)
    indices = (pc ^ (histories & predictor._history_mask)) & predictor._mask

    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    boundaries = np.flatnonzero(np.diff(sorted_indices)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))

    table = predictor._table
    mispredictions = 0
    mixed_entries = []  # (table_index, outcome_subsequence)
    for start, end in zip(starts, ends):
        index = int(sorted_indices[start])
        outs = outcomes[order[start:end]]
        state = int(table[index])
        length = end - start
        taken_count = int(np.count_nonzero(outs))
        if taken_count == length:  # constant taken
            mispredictions += min(length, max(0, 2 - state))
            table[index] = min(3, state + length)
        elif taken_count == 0:  # constant not taken
            mispredictions += min(length, max(0, state - 1))
            table[index] = max(0, state - length)
        else:
            mixed_entries.append((index, outs))

    if mixed_entries:
        lengths = np.array([len(outs) for _, outs in mixed_entries])
        n_entries = len(mixed_entries)
        max_len = int(lengths.max())
        matrix = np.zeros((n_entries, max_len), dtype=bool)
        for g, (_, outs) in enumerate(mixed_entries):
            matrix[g, : len(outs)] = outs
        states = np.array([table[index] for index, _ in mixed_entries], dtype=np.int16)
        for step in range(max_len):
            active = lengths > step
            outs = matrix[:, step]
            predictions = states >= 2
            mispredictions += int(np.count_nonzero(active & (predictions != outs)))
            up = active & outs
            down = active & ~outs
            states = np.where(up, np.minimum(states + 1, 3),
                              np.where(down, np.maximum(states - 1, 0), states))
        for g, (index, _) in enumerate(mixed_entries):
            table[index] = states[g]

    if predictor.history_bits:
        # Final history: last ``history_bits`` events of [initial, outcomes].
        take = min(n, predictor.history_bits)
        packed = 0
        for bit in outcomes[n - take:]:
            packed = (packed << 1) | int(bit)
        predictor._history = int(
            ((predictor._history << take) | packed) & predictor._history_mask
        )

    predictor.predictions += n
    predictor.mispredictions += int(mispredictions)
    return int(mispredictions)
