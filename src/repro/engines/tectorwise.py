"""Tectorwise: the vectorized execution model (VectorWise-style).

Tectorwise interprets a query plan one *vector* (~1000 values) at a
time: each operator is a sequence of simple primitives that read input
vectors and materialise output vectors.  Three consequences drive its
micro-architecture (Sections 3-8):

- intermediates are materialised into cache-resident vectors, which
  costs instructions and L1/L2 traffic and cuts DRAM pressure;
- predicates are evaluated one primitive at a time, so the branch
  predictor faces each predicate's *individual* selectivity;
- primitives are trivially data-parallel, so AVX-512 SIMD versions
  exist for the projection/selection/probe kernels (Section 8).

Execution is numpy-vectorised; the recorded work is that of the
vector-at-a-time interpreter (per-element primitive costs, vector
materialisation traffic, measured branch streams and probe accesses).
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    OperatorWork,
    QueryResult,
    line_density,
    projection_columns,
    selection_predicate_masks,
    resolve_selection,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.storage import Database
from repro.tpch import schema as sc


class TectorwiseEngine(Engine):
    """Vectorized query engine model."""

    name = "Tectorwise"
    code_footprint_bytes = 48 * 1024
    supports_simd = True

    #: Values per vector (the classic VectorWise vector size).
    VECTOR_SIZE = 1024
    #: Scalar instructions per element of one primitive pass (load,
    #: compute, store, selection-vector indexing, amortised dispatch).
    PASS_INSTRS = 3.0
    #: Scalar instructions per element of the final reduction pass.
    REDUCE_INSTRS = 6.0
    #: AVX-512 lanes for the 8-byte types used here.
    SIMD_LANES = 8
    #: Instructions per element of a SIMD primitive pass.
    SIMD_PASS_INSTRS = 0.8
    #: Instructions per hash computation (vectorised murmur-style).
    HASH_INSTRS = 3.0
    #: Instructions per hash-entry visit (load + compare).
    VISIT_INSTRS = 2.0
    #: MLP a SIMD gather sustains on hash-probe cache misses.
    SIMD_GATHER_MLP = 12.0

    # ------------------------------------------------------------------
    # Primitive cost helpers
    # ------------------------------------------------------------------
    def _pass(
        self,
        work,
        count: float,
        loads: float = 2.0,
        stores: float = 1.0,
        alu: float = 1.0,
        simd: bool = False,
        extra_instr: float = 0.0,
    ) -> None:
        """One primitive pass over ``count`` elements."""
        if simd:
            scale = 1.0 / self.SIMD_LANES
            work.record_work(
                instructions=count * (self.SIMD_PASS_INSTRS + extra_instr * scale),
                simd=count * alu * scale,
                loads=count * loads * scale,
                stores=count * stores * scale,
            )
        else:
            work.record_work(
                instructions=count * (self.PASS_INSTRS + extra_instr),
                alu=count * alu,
                loads=count * loads,
                stores=count * stores,
            )

    def _reduce(self, work, count: float, simd: bool = False) -> None:
        """Final sum-reduction pass (serial accumulator chain)."""
        if simd:
            scale = 1.0 / self.SIMD_LANES
            work.record_work(
                instructions=count * self.REDUCE_INSTRS * scale * 2,
                simd=count * scale,
                loads=count * scale,
                chain=count * scale,
            )
        else:
            work.record_work(
                instructions=count * self.REDUCE_INSTRS,
                alu=count,
                loads=count,
                chain=count,
            )

    def _materialize(self, work, count: float, vectors: float = 1.0, simd: bool = False) -> None:
        """Vector materialisation traffic: written once, re-read by the
        next primitive; lives in L1/L2, not DRAM.  SIMD moves the same
        bytes with full-register accesses."""
        work.record_cached_traffic(
            read=count * 8.0 * vectors,
            write=count * 8.0 * vectors,
            access_bytes=64.0 if simd else 8.0,
        )

    # ------------------------------------------------------------------
    # Projection (Section 3)
    # ------------------------------------------------------------------
    def run_projection(self, db: Database, degree: int, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows

        total = np.zeros(n)
        for column in columns:
            total = total + lineitem[column]
        value = float(total.sum())

        work = self._new_work()
        work.record_sequential_read(lineitem.bytes_for(columns))
        # (degree-1) binary add passes materialising intermediates,
        # then one reduction pass.  From degree two onwards every pass
        # sees the same pattern: two vectors in, one vector out --
        # which is why the breakdown stays flat (Section 3).
        add_passes = max(0, degree - 1)
        for _ in range(add_passes):
            self._pass(work, n, simd=simd)
        if add_passes:
            self._materialize(work, n, vectors=add_passes, simd=simd)
        self._reduce(work, n, simd=simd)
        label = f"projection-p{degree}" + ("-simd" if simd else "")
        return QueryResult(label, value, n, work, {"simd": simd})

    # ------------------------------------------------------------------
    # Selection (Sections 4 and 7)
    # ------------------------------------------------------------------
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection(db, selectivity, thresholds)
        masks = selection_predicate_masks(db, thresholds)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        proj_cols = projection_columns(4)

        work = self._new_work()
        # Predicates evaluated one primitive at a time over shrinking
        # selection vectors; the predictor sees each *individual*
        # conditional selectivity (Section 4).
        candidates = np.arange(n)
        prev_count = n
        first = True
        for column, mask in masks:
            outcomes = mask[candidates]
            passed = candidates[outcomes]
            if first:
                work.record_sequential_read(lineitem.bytes_for([column]))
                first = False
            else:
                density = line_density(candidates, n)
                work.record_sparse_scan(
                    f"{column} gather",
                    density * lineitem.bytes_for([column]),
                    density,
                )
            if predicated:
                # Branch-free selection-vector computation: flag math
                # plus unconditional index store (Section 7).
                self._pass(work, prev_count, stores=1.0, alu=3.0, extra_instr=2.0, simd=simd)
            else:
                self._pass(work, prev_count, stores=0.5, alu=1.0, extra_instr=1.0, simd=simd)
                taken = len(passed) / prev_count if prev_count else 0.0
                work.record_branch_stream(f"{column} predicate", prev_count, taken)
            self._materialize(work, len(passed), simd=simd)
            candidates = passed
            prev_count = len(passed)

        q = len(candidates)
        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][candidates]
        value = float(projected.sum())

        # Projection through the final selection vector: gather passes
        # + adds + reduce.  The bulk of the projection work is the same
        # with and without predication (Section 7).
        density = line_density(candidates, n)
        for column in proj_cols:
            work.record_sparse_scan(
                f"{column} gather",
                density * lineitem.bytes_for([column]),
                density,
            )
        add_passes = len(proj_cols) - 1
        for _ in range(add_passes):
            self._pass(work, q, extra_instr=1.0, simd=simd)
        self._materialize(work, q, vectors=add_passes, simd=simd)
        self._reduce(work, q, simd=simd)

        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        ) + ("-simd" if simd else "")
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
            "simd": simd,
        }
        return QueryResult(label, value, n, work, details)

    # ------------------------------------------------------------------
    # Join (Sections 5 and 8.2)
    # ------------------------------------------------------------------
    def run_join(self, db: Database, size: str, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        build = db.table(spec.build_table)
        probe = db.table(spec.probe_table)
        n_probe = probe.n_rows

        table = ChainedHashTable(build[spec.build_key])
        result = table.probe(probe[spec.probe_key])
        matched = result.found
        m = int(matched.sum())

        projected = np.zeros(m)
        for column in spec.sum_columns:
            projected = projected + probe[column][matched]
        value = float(projected.sum())

        operators = OperatorWork(self)
        self._record_build(
            operators.operator("hash build"), table, build.bytes_for([spec.build_key])
        )
        probe_work = operators.operator("hash probe")
        probe_work.record_sequential_read(probe.bytes_for([spec.probe_key]))
        self._record_probe(probe_work, table, result, n_probe, simd=simd)
        # Sum over matches: gather passes + adds + reduce (all matched
        # here: FK joins, density ~1).
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_sequential_read(probe.bytes_for(spec.sum_columns))
        add_passes = len(spec.sum_columns) - 1
        for _ in range(add_passes + 1):
            self._pass(aggregate_work, m, extra_instr=1.0, simd=simd)
        self._materialize(aggregate_work, m, vectors=add_passes + 1, simd=simd)
        self._reduce(aggregate_work, m, simd=simd)
        work = operators.total()

        label = f"join-{size}" + ("-simd" if simd else "")
        details = {
            "join_size": size,
            "hit_fraction": result.hit_fraction,
            "chain_stats": table.chain_stats(),
            "hash_table_bytes": table.working_set_bytes,
            "simd": simd,
            "operators": operators.profiles,
        }
        return QueryResult(label, value, n_probe, work, details)

    def _record_build(self, work, table: ChainedHashTable, key_bytes: float) -> None:
        """Vectorized build: hash pass + scatter insert pass."""
        n = table.n_keys
        self._pass(work, n, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=n, stores=n)
        self._materialize(work, n)
        work.record_sequential_read(key_bytes)
        work.record_random("hash build scatter", n, table.working_set_bytes)

    def _record_probe(
        self, work, table: ChainedHashTable, result, n_probe: int, simd: bool = False
    ) -> None:
        """Vectorized probe: hash pass, head-gather pass, compare pass,
        chain-walk pass; materialises hash and candidate vectors."""
        self._pass(work, n_probe, extra_instr=self.HASH_INSTRS, simd=simd)
        work.record_work(hash_ops=n_probe)
        self._pass(work, n_probe, loads=1.0, simd=simd)  # head gather
        self._pass(work, n_probe, extra_instr=1.0, simd=simd)  # key compare
        if result.extra_walk:
            self._pass(work, result.extra_walk, extra_instr=self.VISIT_INSTRS)
        self._materialize(work, n_probe, vectors=2.0, simd=simd)
        work.record_random(
            "hash probe heads",
            n_probe,
            table.working_set_bytes,
            mlp_hint=self.SIMD_GATHER_MLP if simd else None,
        )
        if result.extra_walk:
            work.record_random(
                "hash chain walk",
                result.extra_walk,
                table.working_set_bytes,
                dependent=True,
            )
        if not simd:
            work.record_branch_outcomes("probe hit", result.found)
            if result.comparisons:
                work.record_branch_stream(
                    "chain continue",
                    result.comparisons,
                    result.extra_walk / result.comparisons,
                )

    # ------------------------------------------------------------------
    # Group by
    # ------------------------------------------------------------------
    def run_groupby(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
        table = GroupByHashTable(composite)
        sums = table.aggregate_sum(lineitem["l_extendedprice"])
        value = float(sums.sum())

        work = self._new_work()
        work.record_sequential_read(
            lineitem.bytes_for(["l_partkey", "l_returnflag", "l_extendedprice"])
        )
        self._record_groupby_updates(work, table)
        details = {
            "groups": table.n_groups,
            "chain_stats": table.chain_stats(),
            "collision_fraction": table.collision_fraction(),
        }
        return QueryResult("groupby-micro", value, n, work, details)

    def _record_groupby_updates(self, work, table: GroupByHashTable) -> None:
        n = table.n_updates
        comparisons = table.update_comparisons()
        self._pass(work, n, extra_instr=self.HASH_INSTRS)  # hash pass
        self._pass(work, n, loads=1.0)  # slot gather
        self._pass(work, n, extra_instr=1.0)  # compare + update pass
        work.record_work(hash_ops=n, chain=n, stores=n)
        if comparisons > n:
            self._pass(work, comparisons - n, extra_instr=self.VISIT_INSTRS)
        self._materialize(work, n, vectors=2.0)
        work.record_random("group table update", n, table.working_set_bytes)
        extra = comparisons - n
        if extra > 0:
            work.record_random(
                "group chain walk", extra, table.working_set_bytes, dependent=True
            )
        work.record_branch_stream("group collision", n, table.collision_fraction())

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_q1(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        mask = lineitem["l_shipdate"] <= sc.DATE_1998_09_02
        selected = np.flatnonzero(mask)
        q = len(selected)

        flags = lineitem["l_returnflag"][selected]
        status = lineitem["l_linestatus"][selected]
        quantity = lineitem["l_quantity"][selected]
        price = lineitem["l_extendedprice"][selected]
        discount = lineitem["l_discount"][selected]
        tax = lineitem["l_tax"][selected]
        disc_price = price * (1.0 - discount)
        charge = disc_price * (1.0 + tax)
        table = GroupByHashTable(flags * 2 + status, target_load=0.5)
        value = {
            "sum_qty": float(quantity.sum()),
            "sum_base_price": float(price.sum()),
            "sum_disc_price": float(disc_price.sum()),
            "sum_charge": float(charge.sum()),
            "groups": table.n_groups,
        }

        work = self._new_work()
        columns = (
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        )
        work.record_sequential_read(lineitem.bytes_for(columns))
        # Filter primitive + outcome stream (predictable, ~99% taken).
        self._pass(work, n, stores=0.5, extra_instr=1.0)
        work.record_branch_outcomes("shipdate filter", mask)
        # Expression passes: 1-discount, *, 1+tax, * -> 4 passes; key
        # pass; 8 aggregate update passes through the group vector.
        for _ in range(4):
            self._pass(work, q)
        self._pass(work, q, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=q)
        for _ in range(8):
            self._pass(work, q, loads=2.0, stores=1.0)
        work.record_work(chain=q * 2.0)
        self._materialize(work, q, vectors=7.0)
        return QueryResult("Q1", value, n, work, {"groups": table.n_groups})

    def run_q6(self, db: Database, predicated: bool = False) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        shipdate = lineitem["l_shipdate"]
        discount = lineitem["l_discount"]
        quantity = lineitem["l_quantity"]
        predicates = [
            ("l_shipdate >=", shipdate >= sc.DATE_1994_01_01),
            ("l_shipdate <", shipdate < sc.DATE_1995_01_01),
            ("l_discount >=", discount >= 0.05),
            ("l_discount <=", discount <= 0.07),
            ("l_quantity <", quantity < 24.0),
        ]
        pred_columns = ["l_shipdate", "l_shipdate", "l_discount", "l_discount", "l_quantity"]

        work = self._new_work()
        candidates = np.arange(n)
        prev_count = n
        seen_columns: set[str] = set()
        for (name, mask), column in zip(predicates, pred_columns):
            outcomes = mask[candidates]
            passed = candidates[outcomes]
            if column not in seen_columns:
                if prev_count == n:
                    work.record_sequential_read(lineitem.bytes_for([column]))
                else:
                    density = line_density(candidates, n)
                    work.record_sparse_scan(
                        f"{column} gather",
                        density * lineitem.bytes_for([column]),
                        density,
                    )
                seen_columns.add(column)
            if predicated:
                self._pass(work, prev_count, stores=1.0, alu=3.0, extra_instr=2.0)
            else:
                self._pass(work, prev_count, stores=0.5, extra_instr=1.0)
                taken = len(passed) / prev_count if prev_count else 0.0
                work.record_branch_stream(f"{name} predicate", prev_count, taken)
            self._materialize(work, len(passed))
            candidates = passed
            prev_count = len(passed)

        q = len(candidates)
        value = float(
            (lineitem["l_extendedprice"][candidates] * discount[candidates]).sum()
        )
        density = line_density(candidates, n)
        work.record_sparse_scan(
            "l_extendedprice gather",
            density * lineitem.bytes_for(["l_extendedprice"]),
            density,
        )
        self._pass(work, q, extra_instr=1.0)  # price * discount
        self._materialize(work, q)
        self._reduce(work, q)
        label = "Q6-predicated" if predicated else "Q6"
        details = {"selectivity": q / n if n else 0.0, "predicated": predicated}
        return QueryResult(label, value, n, work, details)

    def run_q9(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        part = db.table("part")
        supplier = db.table("supplier")
        partsupp = db.table("partsupp")
        orders = db.table("orders")
        n = lineitem.n_rows

        green_keys = part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]
        green_table = ChainedHashTable(green_keys)
        green_probe = green_table.probe(lineitem["l_partkey"])
        green = green_probe.found
        q = int(green.sum())

        n_supp = supplier.n_rows
        ps_composite = partsupp["ps_partkey"] * (n_supp + 1) + partsupp["ps_suppkey"]
        ps_table = ChainedHashTable(ps_composite)
        li_composite = (
            lineitem["l_partkey"][green] * (n_supp + 1) + lineitem["l_suppkey"][green]
        )
        ps_probe = ps_table.probe(li_composite)
        supp_table = ChainedHashTable(supplier["s_suppkey"])
        supp_probe = supp_table.probe(lineitem["l_suppkey"][green])
        orders_table = ChainedHashTable(orders["o_orderkey"])
        orders_probe = orders_table.probe(lineitem["l_orderkey"][green])

        keep = ps_probe.found & supp_probe.found & orders_probe.found
        supplycost = partsupp["ps_supplycost"][ps_probe.match_index[keep]]
        nationkey = supplier["s_nationkey"][supp_probe.match_index[keep]]
        orderdate = orders["o_orderdate"][orders_probe.match_index[keep]]
        year = 1992 + orderdate // 365
        price = lineitem["l_extendedprice"][green][keep]
        disc = lineitem["l_discount"][green][keep]
        qty = lineitem["l_quantity"][green][keep]
        amount = price * (1.0 - disc) - supplycost * qty
        group_table = GroupByHashTable(nationkey * 10_000 + year, target_load=0.5)
        value = float(group_table.aggregate_sum(amount).sum())

        work = self._new_work()
        work.record_sequential_read(
            lineitem.bytes_for(
                ("l_partkey", "l_suppkey", "l_orderkey", "l_extendedprice",
                 "l_discount", "l_quantity")
            )
        )
        for table, key_bytes in (
            (green_table, green_keys.nbytes),
            (ps_table, partsupp.bytes_for(("ps_partkey", "ps_suppkey", "ps_supplycost"))),
            (supp_table, supplier.bytes_for(("s_suppkey", "s_nationkey"))),
            (orders_table, orders.bytes_for(("o_orderkey", "o_orderdate"))),
        ):
            self._record_build(work, table, key_bytes)
        self._record_probe(work, green_table, green_probe, n)
        self._record_probe(work, ps_table, ps_probe, q)
        self._record_probe(work, supp_table, supp_probe, q)
        self._record_probe(work, orders_table, orders_probe, q)
        survivors = int(keep.sum())
        for _ in range(4):  # amount expression passes
            self._pass(work, survivors)
        self._pass(work, survivors, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=survivors, chain=survivors)
        self._materialize(work, survivors, vectors=4.0)
        details = {
            "green_fraction": q / n if n else 0.0,
            "survivors": survivors,
            "orders_ht_bytes": orders_table.working_set_bytes,
        }
        return QueryResult("Q9", value, n, work, details)

    def run_q18(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        orders = db.table("orders")
        customer = db.table("customer")
        n = lineitem.n_rows

        group_table = GroupByHashTable(lineitem["l_orderkey"])
        qty_sums = group_table.aggregate_sum(lineitem["l_quantity"])
        big = qty_sums > 300.0
        winner_orderkeys = group_table.distinct_keys[big]
        winners = len(winner_orderkeys)

        orders_table = ChainedHashTable(orders["o_orderkey"])
        winner_probe = orders_table.probe(winner_orderkeys)
        custkeys = orders["o_custkey"][winner_probe.match_index[winner_probe.found]]
        cust_table = ChainedHashTable(customer["c_custkey"])
        cust_probe = cust_table.probe(custkeys)
        value = {
            "winners": winners,
            "sum_winner_qty": float(qty_sums[big].sum()),
            "matched_customers": int(cust_probe.found.sum()),
        }

        work = self._new_work()
        work.record_sequential_read(lineitem.bytes_for(("l_orderkey", "l_quantity")))
        self._record_groupby_updates(work, group_table)
        work.record_branch_stream(
            "having sum(qty) > 300",
            group_table.n_groups,
            winners / group_table.n_groups if group_table.n_groups else 0.0,
        )
        self._record_build(work, orders_table, orders.bytes_for(("o_orderkey", "o_custkey")))
        self._record_probe(work, orders_table, winner_probe, winners)
        self._record_build(work, cust_table, customer.bytes_for(("c_custkey",)))
        self._record_probe(work, cust_table, cust_probe, len(custkeys))
        details = {
            "groups": group_table.n_groups,
            "group_table_bytes": group_table.working_set_bytes,
            "chain_stats": group_table.chain_stats(),
        }
        return QueryResult("Q18", value, n, work, details)
