"""Tectorwise: the vectorized execution model (VectorWise-style).

Tectorwise interprets a query plan one *vector* (~1000 values) at a
time: each operator is a sequence of simple primitives that read input
vectors and materialise output vectors.  Three consequences drive its
micro-architecture (Sections 3-8):

- intermediates are materialised into cache-resident vectors, which
  costs instructions and L1/L2 traffic and cuts DRAM pressure;
- predicates are evaluated one primitive at a time, so the branch
  predictor faces each predicate's *individual* selectivity;
- primitives are trivially data-parallel, so AVX-512 SIMD versions
  exist for the projection/selection/probe kernels (Section 8).

Execution is numpy-vectorised; the recorded work is that of the
vector-at-a-time interpreter (per-element primitive costs, vector
materialisation traffic, measured branch streams and probe accesses).

Morsel mode (``row_range=(lo, hi)``, see :mod:`repro.engines.morsel`)
follows the engine-wide protocol: per-morsel recordings are dyadic and
positionally congruent (global hash builds are recorded by the lead
morsel, zero-count placeholders elsewhere), the non-dyadic SIMD
per-element pass cost (0.8 instructions) is deferred through
:attr:`PENDING_RATES`, and single-shot runs go through the same
``_finish_*`` merge finishers as the parallel executor.
"""

from __future__ import annotations

import numpy as np

from repro.core.exactsum import ExactSum
from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    MergedPartials,
    OperatorWork,
    QueryResult,
    projection_columns,
    resolve_selection_cached,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.engines.morsel import (
    bytes_for_rows,
    gather_lines,
    resolve_range,
    shared_structure,
)
from repro.engines.scan import (
    AGG_STATE_KEY,
    combined_key,
    decision_details,
    exact_sum_column,
    predicate_mask,
    q1_encoded_aggregation,
    record_encoded_agg,
)
from repro.storage import Database
from repro.tpch import schema as sc


class TectorwiseEngine(Engine):
    """Vectorized query engine model."""

    name = "Tectorwise"
    code_footprint_bytes = 48 * 1024
    supports_simd = True

    #: Values per vector (the classic VectorWise vector size).
    VECTOR_SIZE = 1024
    #: Scalar instructions per element of one primitive pass (load,
    #: compute, store, selection-vector indexing, amortised dispatch).
    PASS_INSTRS = 3.0
    #: Scalar instructions per element of the final reduction pass.
    REDUCE_INSTRS = 6.0
    #: AVX-512 lanes for the 8-byte types used here.
    SIMD_LANES = 8
    #: Instructions per element of a SIMD primitive pass.
    SIMD_PASS_INSTRS = 0.8
    #: Instructions per hash computation (vectorised murmur-style).
    HASH_INSTRS = 3.0
    #: Instructions per hash-entry visit (load + compare).
    VISIT_INSTRS = 2.0
    #: MLP a SIMD gather sustains on hash-probe cache misses.
    SIMD_GATHER_MLP = 12.0

    #: The SIMD per-element pass cost (0.8 instructions) is not dyadic;
    #: per-morsel element counts accumulate in ``pending`` and the
    #: product is taken once at finalization (partition-invariant).
    PENDING_RATES = {
        "simd-pass": (("instructions", SIMD_PASS_INSTRS),),
    }

    # ------------------------------------------------------------------
    # Primitive cost helpers
    # ------------------------------------------------------------------
    def _pass(
        self,
        work,
        count: float,
        loads: float = 2.0,
        stores: float = 1.0,
        alu: float = 1.0,
        simd: bool = False,
        extra_instr: float = 0.0,
    ) -> None:
        """One primitive pass over ``count`` elements."""
        if simd:
            scale = 1.0 / self.SIMD_LANES
            work.record_work(
                instructions=count * extra_instr * scale,
                simd=count * alu * scale,
                loads=count * loads * scale,
                stores=count * stores * scale,
            )
            work.record_pending("simd-pass", count)
        else:
            work.record_work(
                instructions=count * (self.PASS_INSTRS + extra_instr),
                alu=count * alu,
                loads=count * loads,
                stores=count * stores,
            )

    def _reduce(self, work, count: float, simd: bool = False) -> None:
        """Final sum-reduction pass (serial accumulator chain)."""
        if simd:
            scale = 1.0 / self.SIMD_LANES
            work.record_work(
                instructions=count * self.REDUCE_INSTRS * scale * 2,
                simd=count * scale,
                loads=count * scale,
                chain=count * scale,
            )
        else:
            work.record_work(
                instructions=count * self.REDUCE_INSTRS,
                alu=count,
                loads=count,
                chain=count,
            )

    def _materialize(self, work, count: float, vectors: float = 1.0, simd: bool = False) -> None:
        """Vector materialisation traffic: written once, re-read by the
        next primitive; lives in L1/L2, not DRAM.  SIMD moves the same
        bytes with full-register accesses."""
        work.record_cached_traffic(
            read=count * 8.0 * vectors,
            write=count * 8.0 * vectors,
            access_bytes=64.0 if simd else 8.0,
        )

    # ------------------------------------------------------------------
    # Projection (Section 3)
    # ------------------------------------------------------------------
    def run_projection(
        self, db: Database, degree: int, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo

        if degree == 1:
            # Single column: ``0.0 + v`` carries the same ExactSum units
            # as ``v`` (both signed zeros convert to zero units), so the
            # sum may come straight from the storage codec.
            total_sum, mode, why = exact_sum_column(lineitem, columns[0], lo, hi)
            decision = (("sum", columns[0], mode, why),)
        else:
            # Higher degrees round per row inside ``a + b + ...``; no
            # per-column code rebase reproduces that, so decode.
            total = np.zeros(m)
            for column in columns:
                total = total + lineitem[column][lo:hi]
            total_sum = ExactSum.of_array(total)
            decision = tuple(
                ("sum", column, "decoded", "per-row-rounding")
                for column in columns
            )

        work = self._new_work()
        work.record_sequential_read(bytes_for_rows(lineitem, columns, lo, hi))
        # (degree-1) binary add passes materialising intermediates,
        # then one reduction pass.  From degree two onwards every pass
        # sees the same pattern: two vectors in, one vector out --
        # which is why the breakdown stays flat (Section 3).
        add_passes = max(0, degree - 1)
        for _ in range(add_passes):
            self._pass(work, m, simd=simd)
        if add_passes:
            self._materialize(work, m, vectors=add_passes, simd=simd)
        self._reduce(work, m, simd=simd)
        label = f"projection-p{degree}" + ("-simd" if simd else "")
        state = {"sum": total_sum, AGG_STATE_KEY: decision}
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_projection(
            db, MergedPartials(state, work, m), degree=degree, simd=simd
        )

    def _finish_projection(
        self, db: Database, merged: MergedPartials, degree: int, simd: bool = False
    ) -> QueryResult:
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        label = f"projection-p{degree}" + ("-simd" if simd else "")
        details = {"simd": simd}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            label, merged.state["sum"].total(), merged.tuples, work, details
        )

    # ------------------------------------------------------------------
    # Selection (Sections 4 and 7)
    # ------------------------------------------------------------------
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
        row_range=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection_cached(db, selectivity, thresholds)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        proj_cols = projection_columns(4)
        masks = [
            (column, predicate_mask(lineitem, column, "le", threshold, lo, hi))
            for column, threshold in thresholds.items()
        ]

        work = self._new_work()
        # Predicates evaluated one primitive at a time over shrinking
        # selection vectors; the predictor sees each *individual*
        # conditional selectivity (Section 4).
        candidates = np.arange(m)
        prev_count = m
        first = True
        for column, mask in masks:
            outcomes = mask[candidates]
            passed = candidates[outcomes]
            column_bytes = bytes_for_rows(lineitem, [column], lo, hi)
            if first:
                work.record_sequential_read(column_bytes)
                first = False
            else:
                touched, total_lines = gather_lines(candidates + lo, lo, hi)
                work.record_gather(
                    f"{column} gather", column_bytes, touched, total_lines
                )
            if predicated:
                # Branch-free selection-vector computation: flag math
                # plus unconditional index store (Section 7).
                self._pass(work, prev_count, stores=1.0, alu=3.0, extra_instr=2.0, simd=simd)
            else:
                self._pass(work, prev_count, stores=0.5, alu=1.0, extra_instr=1.0, simd=simd)
                taken = len(passed) / prev_count if prev_count else 0.0
                work.record_branch_stream(f"{column} predicate", prev_count, taken)
            self._materialize(work, len(passed), simd=simd)
            candidates = passed
            prev_count = len(passed)

        q = len(candidates)
        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][lo:hi][candidates]

        # Projection through the final selection vector: gather passes
        # + adds + reduce.  The bulk of the projection work is the same
        # with and without predication (Section 7).
        touched, total_lines = gather_lines(candidates + lo, lo, hi)
        for column in proj_cols:
            work.record_gather(
                f"{column} gather",
                bytes_for_rows(lineitem, [column], lo, hi),
                touched,
                total_lines,
            )
        add_passes = len(proj_cols) - 1
        for _ in range(add_passes):
            self._pass(work, q, extra_instr=1.0, simd=simd)
        self._materialize(work, q, vectors=add_passes, simd=simd)
        self._reduce(work, q, simd=simd)

        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        ) + ("-simd" if simd else "")
        state = {"sum": ExactSum.of_array(projected), "qualifying": q}
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_selection(
            db,
            MergedPartials(state, work, m),
            selectivity=selectivity,
            predicated=predicated,
            simd=simd,
            thresholds=thresholds,
        )

    def _finish_selection(
        self,
        db: Database,
        merged: MergedPartials,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        selectivity, _ = resolve_selection_cached(db, selectivity, thresholds)
        n = merged.tuples
        q = merged.state["qualifying"]
        work = self._finalize_profile(merged.work)
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        ) + ("-simd" if simd else "")
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
            "simd": simd,
        }
        return QueryResult(label, merged.state["sum"].total(), n, work, details)

    # ------------------------------------------------------------------
    # Join (Sections 5 and 8.2)
    # ------------------------------------------------------------------
    def _join_table(self, db: Database, spec) -> ChainedHashTable:
        return shared_structure(
            db,
            ("join-build", spec.size),
            lambda: ChainedHashTable(db.table(spec.build_table)[spec.build_key]),
        )

    def run_join(
        self, db: Database, size: str, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        probe = db.table(spec.probe_table)
        lo, hi = resolve_range(row_range, probe.n_rows)
        m = hi - lo
        lead = lo == 0

        table = self._join_table(db, spec)
        result = table.probe(probe[spec.probe_key][lo:hi])
        matched = result.found
        matches = int(matched.sum())

        projected = np.zeros(matches)
        for column in spec.sum_columns:
            projected = projected + probe[column][lo:hi][matched]

        operators = OperatorWork(self)
        self._record_build(
            operators.operator("hash build"),
            table,
            db.table(spec.build_table).bytes_for([spec.build_key]),
            lead=lead,
        )
        probe_work = operators.operator("hash probe")
        probe_work.record_sequential_read(bytes_for_rows(probe, [spec.probe_key], lo, hi))
        self._record_probe(probe_work, table, result, m, simd=simd)
        # Sum over matches: gather passes + adds + reduce (all matched
        # here: FK joins, density ~1).
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_sequential_read(
            bytes_for_rows(probe, spec.sum_columns, lo, hi)
        )
        add_passes = len(spec.sum_columns) - 1
        for _ in range(add_passes + 1):
            self._pass(aggregate_work, matches, extra_instr=1.0, simd=simd)
        self._materialize(aggregate_work, matches, vectors=add_passes + 1, simd=simd)
        self._reduce(aggregate_work, matches, simd=simd)
        work = operators.total()

        label = f"join-{size}" + ("-simd" if simd else "")
        state = {"sum": ExactSum.of_array(projected), "found": matches}
        if row_range is not None:
            return self._partial_result(
                label, state, m, work, (lo, hi), operators.profiles
            )
        return self._finish_join(
            db,
            MergedPartials(state, work, m, operators.profiles),
            size=size,
            simd=simd,
        )

    def _finish_join(
        self, db: Database, merged: MergedPartials, size: str, simd: bool = False
    ) -> QueryResult:
        spec = JOIN_SPECS[size]
        table = self._join_table(db, spec)
        n_probe = merged.tuples
        work = self._finalize_profile(merged.work)
        operators = {
            name: self._finalize_profile(profile)
            for name, profile in merged.operators.items()
        }
        label = f"join-{size}" + ("-simd" if simd else "")
        details = {
            "join_size": size,
            "hit_fraction": merged.state["found"] / n_probe if n_probe else 0.0,
            "chain_stats": table.chain_stats(),
            "hash_table_bytes": table.working_set_bytes,
            "simd": simd,
            "operators": operators,
        }
        return QueryResult(
            label, merged.state["sum"].total(), n_probe, work, details
        )

    def _record_build(
        self, work, table: ChainedHashTable, key_bytes: float, lead: bool = True
    ) -> None:
        """Vectorized build: hash pass + scatter insert pass.  Global
        work: full counts on the lead morsel, congruent zero-count
        placeholders elsewhere."""
        n = table.n_keys if lead else 0
        self._pass(work, n, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=n, stores=n)
        self._materialize(work, n)
        work.record_sequential_read(key_bytes if lead else 0.0)
        work.record_random("hash build scatter", n, table.working_set_bytes)

    def _record_probe(
        self, work, table: ChainedHashTable, result, n_probe: int, simd: bool = False
    ) -> None:
        """Vectorized probe: hash pass, head-gather pass, compare pass,
        chain-walk pass; materialises hash and candidate vectors."""
        self._pass(work, n_probe, extra_instr=self.HASH_INSTRS, simd=simd)
        work.record_work(hash_ops=n_probe)
        self._pass(work, n_probe, loads=1.0, simd=simd)  # head gather
        self._pass(work, n_probe, extra_instr=1.0, simd=simd)  # key compare
        self._pass(work, result.extra_walk, extra_instr=self.VISIT_INSTRS)
        self._materialize(work, n_probe, vectors=2.0, simd=simd)
        work.record_random(
            "hash probe heads",
            n_probe,
            table.working_set_bytes,
            mlp_hint=self.SIMD_GATHER_MLP if simd else None,
        )
        work.record_random(
            "hash chain walk",
            result.extra_walk,
            table.working_set_bytes,
            dependent=True,
        )
        if not simd:
            work.record_branch_outcomes("probe hit", result.found)
            walk_fraction = (
                result.extra_walk / result.comparisons if result.comparisons else 0.0
            )
            work.record_branch_stream(
                "chain continue", result.comparisons, walk_fraction
            )

    # ------------------------------------------------------------------
    # Group by
    # ------------------------------------------------------------------
    def _groupby_table(self, db: Database) -> GroupByHashTable:
        def build():
            lineitem = db.table("lineitem")
            composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
            return GroupByHashTable(composite)

        return shared_structure(db, "groupby-micro", build)

    def run_groupby(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        table = self._groupby_table(db)

        work = self._new_work()
        work.record_sequential_read(
            bytes_for_rows(lineitem, ["l_partkey", "l_returnflag", "l_extendedprice"], lo, hi)
        )
        self._record_groupby_updates(work, table, lo, hi)
        total, mode, why = exact_sum_column(lineitem, "l_extendedprice", lo, hi)
        state = {
            "sum": total,
            AGG_STATE_KEY: (("sum", "l_extendedprice", mode, why),),
        }
        if row_range is not None:
            return self._partial_result("groupby-micro", state, m, work, (lo, hi))
        return self._finish_groupby(db, MergedPartials(state, work, m))

    def _finish_groupby(self, db: Database, merged: MergedPartials) -> QueryResult:
        table = self._groupby_table(db)
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        details = {
            "groups": table.n_groups,
            "chain_stats": table.chain_stats(),
            "collision_fraction": table.collision_fraction(),
        }
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            "groupby-micro", merged.state["sum"].total(), merged.tuples, work, details
        )

    def _record_groupby_updates(
        self, work, table: GroupByHashTable, lo: int, hi: int
    ) -> None:
        depths = table._depth[table.group_ids[lo:hi]]
        n = hi - lo
        comparisons = int(depths.sum())
        collisions = int((depths > 1).sum())
        self._pass(work, n, extra_instr=self.HASH_INSTRS)  # hash pass
        self._pass(work, n, loads=1.0)  # slot gather
        self._pass(work, n, extra_instr=1.0)  # compare + update pass
        work.record_work(hash_ops=n, chain=n, stores=n)
        self._pass(work, comparisons - n, extra_instr=self.VISIT_INSTRS)
        self._materialize(work, n, vectors=2.0)
        work.record_random("group table update", n, table.working_set_bytes)
        work.record_random(
            "group chain walk", comparisons - n, table.working_set_bytes, dependent=True
        )
        work.record_branch_stream(
            "group collision", n, collisions / n if n else 0.0
        )

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_q1(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        mask = predicate_mask(lineitem, "l_shipdate", "le", sc.DATE_1998_09_02, lo, hi)
        selected = np.flatnonzero(mask)
        q = len(selected)

        encoded_payload, agg_decision = q1_encoded_aggregation(
            lineitem, lo, hi, selected
        )
        price = lineitem["l_extendedprice"][lo:hi][selected]
        discount = lineitem["l_discount"][lo:hi][selected]
        tax = lineitem["l_tax"][lo:hi][selected]
        disc_price = price * (1.0 - discount)
        charge = disc_price * (1.0 + tax)
        if encoded_payload is not None:
            # One combined bincount over (flag x status x quantity-code)
            # cells delivered both the exact quantity sum and the set of
            # observed group keys; the decoded quantity/key columns are
            # never materialised.
            sum_qty, keys = encoded_payload
        else:
            sum_qty = ExactSum.of_array(lineitem["l_quantity"][lo:hi][selected])
            group_key = combined_key(
                lineitem, "l_returnflag", "l_linestatus", 2, lo, hi, take=selected
            )
            keys = set(np.unique(group_key).tolist())

        work = self._new_work()
        columns = (
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        )
        work.record_sequential_read(bytes_for_rows(lineitem, columns, lo, hi))
        # Filter primitive + outcome stream (predictable, ~99% taken).
        self._pass(work, m, stores=0.5, extra_instr=1.0)
        work.record_branch_outcomes("shipdate filter", mask)
        # Expression passes: 1-discount, *, 1+tax, * -> 4 passes; key
        # pass; 8 aggregate update passes through the group vector.
        for _ in range(4):
            self._pass(work, q)
        self._pass(work, q, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=q)
        for _ in range(8):
            self._pass(work, q, loads=2.0, stores=1.0)
        work.record_work(chain=q * 2.0)
        self._materialize(work, q, vectors=7.0)
        state = {
            "sum_qty": sum_qty,
            "sum_base_price": ExactSum.of_array(price),
            "sum_disc_price": ExactSum.of_array(disc_price),
            "sum_charge": ExactSum.of_array(charge),
            "keys": keys,
            AGG_STATE_KEY: agg_decision,
        }
        if row_range is not None:
            return self._partial_result("Q1", state, m, work, (lo, hi))
        return self._finish_q1(db, MergedPartials(state, work, m))

    def _finish_q1(self, db: Database, merged: MergedPartials) -> QueryResult:
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        groups = len(merged.state["keys"])
        value = {
            "sum_qty": merged.state["sum_qty"].total(),
            "sum_base_price": merged.state["sum_base_price"].total(),
            "sum_disc_price": merged.state["sum_disc_price"].total(),
            "sum_charge": merged.state["sum_charge"].total(),
            "groups": groups,
        }
        details = {"groups": groups}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult("Q1", value, merged.tuples, work, details)

    def run_q6(self, db: Database, predicated: bool = False, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        predicates = [
            ("l_shipdate >=",
             predicate_mask(lineitem, "l_shipdate", "ge", sc.DATE_1994_01_01, lo, hi)),
            ("l_shipdate <",
             predicate_mask(lineitem, "l_shipdate", "lt", sc.DATE_1995_01_01, lo, hi)),
            ("l_discount >=",
             predicate_mask(lineitem, "l_discount", "ge", 0.05, lo, hi)),
            ("l_discount <=",
             predicate_mask(lineitem, "l_discount", "le", 0.07, lo, hi)),
            ("l_quantity <",
             predicate_mask(lineitem, "l_quantity", "lt", 24.0, lo, hi)),
        ]
        pred_columns = ["l_shipdate", "l_shipdate", "l_discount", "l_discount", "l_quantity"]

        work = self._new_work()
        candidates = np.arange(m)
        prev_count = m
        seen_columns: set[str] = set()
        for index, ((name, mask), column) in enumerate(zip(predicates, pred_columns)):
            outcomes = mask[candidates]
            passed = candidates[outcomes]
            if column not in seen_columns:
                column_bytes = bytes_for_rows(lineitem, [column], lo, hi)
                if index == 0:
                    work.record_sequential_read(column_bytes)
                else:
                    touched, total_lines = gather_lines(candidates + lo, lo, hi)
                    work.record_gather(
                        f"{column} gather", column_bytes, touched, total_lines
                    )
                seen_columns.add(column)
            if predicated:
                self._pass(work, prev_count, stores=1.0, alu=3.0, extra_instr=2.0)
            else:
                self._pass(work, prev_count, stores=0.5, extra_instr=1.0)
                taken = len(passed) / prev_count if prev_count else 0.0
                work.record_branch_stream(f"{name} predicate", prev_count, taken)
            self._materialize(work, len(passed))
            candidates = passed
            prev_count = len(passed)

        q = len(candidates)
        amounts = (
            lineitem["l_extendedprice"][lo:hi][candidates]
            * lineitem["l_discount"][lo:hi][candidates]
        )
        touched, total_lines = gather_lines(candidates + lo, lo, hi)
        work.record_gather(
            "l_extendedprice gather",
            bytes_for_rows(lineitem, ["l_extendedprice"], lo, hi),
            touched,
            total_lines,
        )
        self._pass(work, q, extra_instr=1.0)  # price * discount
        self._materialize(work, q)
        self._reduce(work, q)
        state = {"sum": ExactSum.of_array(amounts), "qualifying": q}
        label = "Q6-predicated" if predicated else "Q6"
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_q6(db, MergedPartials(state, work, m), predicated=predicated)

    def _finish_q6(
        self, db: Database, merged: MergedPartials, predicated: bool = False
    ) -> QueryResult:
        work = self._finalize_profile(merged.work)
        n = merged.tuples
        q = merged.state["qualifying"]
        label = "Q6-predicated" if predicated else "Q6"
        details = {"selectivity": q / n if n else 0.0, "predicated": predicated}
        return QueryResult(label, merged.state["sum"].total(), n, work, details)

    def _q9_structures(self, db: Database) -> dict:
        def build():
            part = db.table("part")
            supplier = db.table("supplier")
            partsupp = db.table("partsupp")
            orders = db.table("orders")
            n_supp = supplier.n_rows
            green_keys = part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]
            ps_composite = partsupp["ps_partkey"] * (n_supp + 1) + partsupp["ps_suppkey"]
            return {
                "n_supp": n_supp,
                "green_keys": green_keys,
                "green_table": ChainedHashTable(green_keys),
                "ps_table": ChainedHashTable(ps_composite),
                "supp_table": ChainedHashTable(supplier["s_suppkey"]),
                "orders_table": ChainedHashTable(orders["o_orderkey"]),
            }

        return shared_structure(db, "q9-structs", build)

    def run_q9(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        supplier = db.table("supplier")
        partsupp = db.table("partsupp")
        orders = db.table("orders")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        lead = lo == 0
        structs = self._q9_structures(db)
        n_supp = structs["n_supp"]
        green_table = structs["green_table"]
        ps_table = structs["ps_table"]
        supp_table = structs["supp_table"]
        orders_table = structs["orders_table"]

        green_probe = green_table.probe(lineitem["l_partkey"][lo:hi])
        green = green_probe.found
        q = int(green.sum())

        li_composite = (
            lineitem["l_partkey"][lo:hi][green] * (n_supp + 1)
            + lineitem["l_suppkey"][lo:hi][green]
        )
        ps_probe = ps_table.probe(li_composite)
        supp_probe = supp_table.probe(lineitem["l_suppkey"][lo:hi][green])
        orders_probe = orders_table.probe(lineitem["l_orderkey"][lo:hi][green])

        keep = ps_probe.found & supp_probe.found & orders_probe.found
        supplycost = partsupp["ps_supplycost"][ps_probe.match_index[keep]]
        price = lineitem["l_extendedprice"][lo:hi][green][keep]
        disc = lineitem["l_discount"][lo:hi][green][keep]
        qty = lineitem["l_quantity"][lo:hi][green][keep]
        amount = price * (1.0 - disc) - supplycost * qty
        survivors = int(keep.sum())

        work = self._new_work()
        work.record_sequential_read(
            bytes_for_rows(
                lineitem,
                ("l_partkey", "l_suppkey", "l_orderkey", "l_extendedprice",
                 "l_discount", "l_quantity"),
                lo,
                hi,
            )
        )
        for table, key_bytes in (
            (green_table, structs["green_keys"].nbytes),
            (ps_table, partsupp.bytes_for(("ps_partkey", "ps_suppkey", "ps_supplycost"))),
            (supp_table, supplier.bytes_for(("s_suppkey", "s_nationkey"))),
            (orders_table, orders.bytes_for(("o_orderkey", "o_orderdate"))),
        ):
            self._record_build(work, table, key_bytes, lead=lead)
        self._record_probe(work, green_table, green_probe, m)
        self._record_probe(work, ps_table, ps_probe, q)
        self._record_probe(work, supp_table, supp_probe, q)
        self._record_probe(work, orders_table, orders_probe, q)
        for _ in range(4):  # amount expression passes
            self._pass(work, survivors)
        self._pass(work, survivors, extra_instr=self.HASH_INSTRS)
        work.record_work(hash_ops=survivors, chain=survivors)
        self._materialize(work, survivors, vectors=4.0)
        state = {
            "sum": ExactSum.of_array(amount),
            "green": q,
            "survivors": survivors,
        }
        if row_range is not None:
            return self._partial_result("Q9", state, m, work, (lo, hi))
        return self._finish_q9(db, MergedPartials(state, work, m))

    def _finish_q9(self, db: Database, merged: MergedPartials) -> QueryResult:
        structs = self._q9_structures(db)
        n = merged.tuples
        work = self._finalize_profile(merged.work)
        details = {
            "green_fraction": merged.state["green"] / n if n else 0.0,
            "survivors": merged.state["survivors"],
            "orders_ht_bytes": structs["orders_table"].working_set_bytes,
        }
        return QueryResult("Q9", merged.state["sum"].total(), n, work, details)

    def _q18_group_table(self, db: Database) -> GroupByHashTable:
        return shared_structure(
            db,
            ("q18-groups", 0.4),
            lambda: GroupByHashTable(db.table("lineitem")["l_orderkey"]),
        )

    def run_q18(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        group_table = self._q18_group_table(db)

        # Partial per-group quantity sums: l_quantity is integer-valued,
        # so the bincount partials add exactly across morsels.
        qty_sums = np.bincount(
            group_table.group_ids[lo:hi],
            weights=lineitem["l_quantity"][lo:hi],
            minlength=group_table.n_groups,
        )

        work = self._new_work()
        work.record_sequential_read(
            bytes_for_rows(lineitem, ("l_orderkey", "l_quantity"), lo, hi)
        )
        self._record_groupby_updates(work, group_table, lo, hi)
        state = {"qty_sums": qty_sums}
        if row_range is not None:
            return self._partial_result("Q18", state, m, work, (lo, hi))
        return self._finish_q18(db, MergedPartials(state, work, m))

    def _finish_q18(self, db: Database, merged: MergedPartials) -> QueryResult:
        orders = db.table("orders")
        customer = db.table("customer")
        group_table = self._q18_group_table(db)
        work = merged.work

        qty_sums = merged.state["qty_sums"]
        big = qty_sums > 300.0
        winner_orderkeys = group_table.distinct_keys[big]
        winners = len(winner_orderkeys)

        orders_table = shared_structure(
            db, "q18-orders", lambda: ChainedHashTable(orders["o_orderkey"])
        )
        winner_probe = orders_table.probe(winner_orderkeys)
        custkeys = orders["o_custkey"][winner_probe.match_index[winner_probe.found]]
        cust_table = shared_structure(
            db, "q18-cust", lambda: ChainedHashTable(customer["c_custkey"])
        )
        cust_probe = cust_table.probe(custkeys)
        value = {
            "winners": winners,
            "sum_winner_qty": float(qty_sums[big].sum()),
            "matched_customers": int(cust_probe.found.sum()),
        }

        work.record_branch_stream(
            "having sum(qty) > 300",
            group_table.n_groups,
            winners / group_table.n_groups if group_table.n_groups else 0.0,
        )
        self._record_build(work, orders_table, orders.bytes_for(("o_orderkey", "o_custkey")))
        self._record_probe(work, orders_table, winner_probe, winners)
        self._record_build(work, cust_table, customer.bytes_for(("c_custkey",)))
        self._record_probe(work, cust_table, cust_probe, len(custkeys))
        work = self._finalize_profile(work)
        details = {
            "groups": group_table.n_groups,
            "group_table_bytes": group_table.working_set_bytes,
            "chain_stats": group_table.chain_stats(),
        }
        return QueryResult("Q18", value, merged.tuples, work, details)
