"""Interpretation-based commercial engines ("DBMS R" and "DBMS C").

The paper profiles two closed-source commercial systems: a traditional
row store (DBMS R) and its column-store extension (DBMS C).  Their
defining micro-architectural property is a retired-instruction
footprint one to two orders of magnitude larger than the high
performance engines' -- tuple-at-a-time (R) or block-at-a-time (C)
interpretation with virtual dispatch, type/NULL checks and expression
trees -- while *not* being Icache-bound (the paper's headline negative
result).

:class:`InterpreterEngine` implements the shared Volcano-style cost
model; the two concrete classes configure granularity (1 vs 1024
tuples per ``next()``), per-expression interpretation cost, storage
layout (full row pages vs single columns) and code footprint.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    QueryResult,
    projection_columns,
    selection_predicate_masks,
    resolve_selection,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.storage import Database
from repro.tpch import schema as sc


class InterpreterEngine(Engine):
    """Shared Volcano-style interpreter cost model."""

    #: Instructions per operator ``next()`` call (virtual dispatch,
    #: tuple-slot management, scheduling) -- paid per block.
    NEXT_COST = 250.0
    #: Instructions to interpret one expression term on one tuple.
    EXPR_COST = 150.0
    #: Tuples delivered per ``next()`` call (1 = tuple-at-a-time).
    BLOCK_SIZE = 1.0
    #: Random accesses into engine state (buffer manager, operator
    #: state, tuple descriptors) per operator per tuple.
    STATE_ACCESSES = 1.0
    #: Working set of that engine state.
    STATE_WS_BYTES = 48 * 1024 * 1024
    #: Serially dependent dispatch loads per operator per tuple.
    CHAIN_PER_OP = 4.0
    #: Misprediction rate of the interpreter's indirect dispatch
    #: branches (real interpreters: a few percent).
    DISPATCH_MISPREDICT = 0.06
    #: Dispatch branches per operator per tuple.
    DISPATCH_BRANCHES = 2.0
    #: Per-value interpretation checks (NULL/type/overflow) carry one
    #: lightly mispredicted branch per expression term.
    VALUE_CHECK_MISPREDICT = 0.015
    #: Fatter hash-table entries than the hand-rolled engines.
    HT_SIZE_FACTOR = 2.0
    #: Effective ILP of the interpretation code: virtual dispatch and
    #: tuple-slot indirection keep the 4-wide core under-filled; the
    #: gap surfaces as Execution stalls (Figure 2).
    EFFECTIVE_ILP = 2.2

    def _new_work(self):
        work = super()._new_work()
        work.effective_ilp = self.EFFECTIVE_ILP
        return work

    # ------------------------------------------------------------------
    def _interp_work(
        self, work, tuples: float, n_operators: float, term_evals: float
    ) -> None:
        """Interpretation cost of pushing ``tuples`` through a plan of
        ``n_operators`` evaluating ``term_evals`` expression terms in
        total (term_evals is already multiplied by the tuple counts the
        terms actually run on)."""
        next_calls = tuples * n_operators / self.BLOCK_SIZE
        instructions = next_calls * self.NEXT_COST + term_evals * self.EXPR_COST
        work.record_work(
            instructions=instructions,
            alu=instructions * 0.30,
            loads=instructions * 0.30,
            stores=instructions * 0.05,
            chain=tuples * self.CHAIN_PER_OP * n_operators / self.BLOCK_SIZE,
        )
        state_accesses = tuples * self.STATE_ACCESSES * n_operators / self.BLOCK_SIZE
        if state_accesses >= 1:
            # Operator-state and tuple-descriptor lookups chase
            # pointers: the next access depends on the previous load.
            work.record_random(
                "interpreter state", state_accesses, self.STATE_WS_BYTES,
                dependent=True,
            )
        dispatch = tuples * self.DISPATCH_BRANCHES * n_operators / self.BLOCK_SIZE
        if dispatch >= 1:
            work.record_branch_stream(
                "interpreter dispatch", dispatch, 0.5, self.DISPATCH_MISPREDICT
            )
        if term_evals >= 1:
            work.record_branch_stream(
                "interpreted value checks", term_evals, 0.5,
                self.VALUE_CHECK_MISPREDICT,
            )

    def _scan_bytes(self, db: Database, table: str, columns) -> float:
        """Bytes a scan of ``table`` moves (layout-dependent)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Micro-benchmarks
    # ------------------------------------------------------------------
    def run_projection(self, db: Database, degree: int, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        total = np.zeros(n)
        for column in columns:
            total = total + lineitem[column]
        value = float(total.sum())

        work = self._new_work()
        # Plan: Scan -> Project -> Aggregate.
        self._interp_work(work, n, n_operators=3, term_evals=n * 2 * degree)
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns))
        return QueryResult(f"projection-p{degree}", value, n, work)

    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection(db, selectivity, thresholds)
        masks = selection_predicate_masks(db, thresholds)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        proj_cols = projection_columns(4)

        combined = masks[0][1] & masks[1][1] & masks[2][1]
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)
        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][qualifying]
        value = float(projected.sum())

        work = self._new_work()
        # Plan: Scan -> Filter -> Project -> Aggregate.  The filter
        # interprets predicates tuple-at-a-time with short-circuiting,
        # so later predicates run on survivors only; the branch-free
        # variant evaluates the projection for every tuple.
        work_terms, _survivors = self._filter_terms_and_streams(work, masks, n, predicated)
        projected_tuples = n if predicated else q
        term_evals = work_terms + projected_tuples * 2 * len(proj_cols)
        self._interp_work(work, n, n_operators=4, term_evals=term_evals)
        columns = [name for name, _ in masks] + list(proj_cols)
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns))
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
        }
        return QueryResult(label, value, n, work, details)

    def _filter_terms_and_streams(self, work, masks, n: int, predicated: bool):
        """Short-circuit predicate evaluation: returns the number of
        term evaluations and records per-predicate branch streams."""
        alive = np.ones(n, dtype=bool)
        term_evals = 0.0
        for name, mask in masks:
            candidates = int(alive.sum())
            term_evals += candidates * 2
            if not predicated and candidates:
                conditional = mask[alive]
                work.record_branch_outcomes(f"{name} predicate", conditional)
            alive = alive & mask
        if predicated:
            # Branch-free interpretation evaluates everything.
            term_evals = n * 2 * len(masks)
        return term_evals, int(alive.sum())

    def run_join(self, db: Database, size: str, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        build = db.table(spec.build_table)
        probe = db.table(spec.probe_table)
        n_probe = probe.n_rows

        table = ChainedHashTable(build[spec.build_key])
        result = table.probe(probe[spec.probe_key])
        matched = result.found
        m = int(matched.sum())
        projected = np.zeros(m)
        for column in spec.sum_columns:
            projected = projected + probe[column][matched]
        value = float(projected.sum())

        work = self._new_work()
        # Build pipeline: Scan -> HashBuild over the build side.
        self._interp_work(work, build.n_rows, n_operators=2, term_evals=build.n_rows)
        work.record_sequential_read(self._scan_bytes(db, spec.build_table, [spec.build_key]))
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("hash build scatter", build.n_rows, ws)
        # Probe pipeline: Scan -> HashJoin -> Project -> Aggregate.
        degree = len(spec.sum_columns)
        self._interp_work(
            work, n_probe, n_operators=4,
            term_evals=n_probe * 2 + m * 2 * degree,
        )
        work.record_sequential_read(
            self._scan_bytes(db, spec.probe_table, [spec.probe_key, *spec.sum_columns])
        )
        work.record_random("hash probe heads", n_probe, ws)
        if result.extra_walk:
            work.record_random("hash chain walk", result.extra_walk, ws, dependent=True)
        work.record_branch_outcomes("probe hit", result.found)
        details = {
            "join_size": size,
            "hit_fraction": result.hit_fraction,
            "chain_stats": table.chain_stats(),
        }
        return QueryResult(f"join-{size}", value, n_probe, work, details)

    def run_groupby(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
        table = GroupByHashTable(composite)
        value = float(table.aggregate_sum(lineitem["l_extendedprice"]).sum())

        work = self._new_work()
        self._interp_work(work, n, n_operators=3, term_evals=n * 3)
        work.record_sequential_read(
            self._scan_bytes(db, "lineitem", ["l_partkey", "l_returnflag", "l_extendedprice"])
        )
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("group table update", n, ws)
        work.record_branch_stream("group collision", n, table.collision_fraction())
        details = {"groups": table.n_groups, "chain_stats": table.chain_stats()}
        return QueryResult("groupby-micro", value, n, work, details)

    # ------------------------------------------------------------------
    # TPC-H: interpretation cost over the reference plans.
    # ------------------------------------------------------------------
    def run_q1(self, db: Database) -> QueryResult:
        from repro.tpch.queries import q1_reference

        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        groups = q1_reference(db)
        mask = lineitem["l_shipdate"] <= sc.DATE_1998_09_02
        q = int(mask.sum())

        work = self._new_work()
        self._interp_work(work, n, n_operators=4, term_evals=n * 2 + q * 14)
        columns = [
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        ]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns))
        work.record_branch_outcomes("shipdate filter", mask)
        return QueryResult("Q1", groups, n, work, {"groups": len(groups)})

    def run_q6(self, db: Database, predicated: bool = False) -> QueryResult:
        from repro.tpch.queries import q6_predicates, q6_reference

        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        value = q6_reference(db)
        predicates = q6_predicates(db)

        work = self._new_work()
        alive = np.ones(n, dtype=bool)
        term_evals = 0.0
        for name, mask in predicates:
            candidates = int(alive.sum())
            term_evals += candidates * 2
            if not predicated and candidates:
                work.record_branch_outcomes(f"{name}", mask[alive])
            alive &= mask
        if predicated:
            term_evals = n * 2 * len(predicates)
        q = int(alive.sum())
        self._interp_work(work, n, n_operators=4, term_evals=term_evals + q * 3)
        columns = ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns))
        label = "Q6-predicated" if predicated else "Q6"
        return QueryResult(label, value, n, work, {"selectivity": q / n if n else 0.0})

    def run_q9(self, db: Database) -> QueryResult:
        from repro.tpch.queries import q9_reference

        lineitem = db.table("lineitem")
        part = db.table("part")
        supplier = db.table("supplier")
        partsupp = db.table("partsupp")
        orders = db.table("orders")
        n = lineitem.n_rows
        value = q9_reference(db)

        green = np.isin(
            lineitem["l_partkey"],
            part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY],
        )
        q = int(green.sum())
        work = self._new_work()
        # Six-table plan: scans + four hash joins + aggregation.
        self._interp_work(work, n, n_operators=5, term_evals=n * 2 + q * 16)
        self._interp_work(
            work, partsupp.n_rows + supplier.n_rows + orders.n_rows,
            n_operators=2, term_evals=partsupp.n_rows + supplier.n_rows + orders.n_rows,
        )
        columns = [
            "l_partkey", "l_suppkey", "l_orderkey",
            "l_extendedprice", "l_discount", "l_quantity",
        ]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns))
        work.record_sequential_read(self._scan_bytes(db, "partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"]))
        work.record_sequential_read(self._scan_bytes(db, "orders", ["o_orderkey", "o_orderdate"]))
        ht_bytes = self.HT_SIZE_FACTOR * 24 * (partsupp.n_rows + orders.n_rows)
        work.record_random("hash probe heads", n + 3.0 * q, ht_bytes)
        work.record_branch_outcomes("green part probe", green)
        return QueryResult("Q9", value, n, work, {"green_fraction": q / n if n else 0.0})

    def run_q18(self, db: Database) -> QueryResult:
        from repro.tpch.queries import q18_reference

        lineitem = db.table("lineitem")
        orders = db.table("orders")
        n = lineitem.n_rows
        value = q18_reference(db)

        table = GroupByHashTable(lineitem["l_orderkey"], target_load=0.25)
        work = self._new_work()
        self._interp_work(work, n, n_operators=4, term_evals=n * 4)
        work.record_sequential_read(self._scan_bytes(db, "lineitem", ["l_orderkey", "l_quantity"]))
        work.record_sequential_read(self._scan_bytes(db, "orders", ["o_orderkey", "o_custkey"]))
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("group table update", n, ws)
        work.record_branch_stream("group collision", n, table.collision_fraction())
        details = {"groups": table.n_groups, "winners": len(value)}
        return QueryResult("Q18", value, n, work, details)


class RowStoreEngine(InterpreterEngine):
    """"DBMS R": traditional commercial row store.

    Tuple-at-a-time Volcano interpretation over slotted row pages: a
    scan drags *entire rows* through the memory hierarchy and every
    tuple pays the full dispatch/interpretation tax.
    """

    name = "DBMS R"
    code_footprint_bytes = 768 * 1024
    BLOCK_SIZE = 1.0
    NEXT_COST = 250.0
    EXPR_COST = 150.0
    STATE_ACCESSES = 2.0
    CHAIN_PER_OP = 4.0
    EFFECTIVE_ILP = 2.5

    def _scan_bytes(self, db: Database, table: str, columns) -> float:
        return float(db.row_table(table).scan_bytes())


class ColumnStoreEngine(InterpreterEngine):
    """"DBMS C": the column-store extension of DBMS R.

    Block-at-a-time interpretation over single columns: the ``next()``
    tax is amortised over ~1000 values and scans touch only the needed
    columns, but each value still pays per-value interpretation
    (type/NULL dispatch), keeping the instruction footprint an order of
    magnitude above the high-performance engines.
    """

    name = "DBMS C"
    code_footprint_bytes = 640 * 1024
    BLOCK_SIZE = 1024.0
    NEXT_COST = 250.0
    EXPR_COST = 35.0
    STATE_ACCESSES = 16.0  # per block: position lists, block headers
    CHAIN_PER_OP = 256.0  # per block
    DISPATCH_BRANCHES = 16.0  # per block
    DISPATCH_MISPREDICT = 0.08
    EFFECTIVE_ILP = 3.9

    def _scan_bytes(self, db: Database, table: str, columns) -> float:
        return float(db.table(table).bytes_for(dict.fromkeys(columns)))
