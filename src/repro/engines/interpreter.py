"""Interpretation-based commercial engines ("DBMS R" and "DBMS C").

The paper profiles two closed-source commercial systems: a traditional
row store (DBMS R) and its column-store extension (DBMS C).  Their
defining micro-architectural property is a retired-instruction
footprint one to two orders of magnitude larger than the high
performance engines' -- tuple-at-a-time (R) or block-at-a-time (C)
interpretation with virtual dispatch, type/NULL checks and expression
trees -- while *not* being Icache-bound (the paper's headline negative
result).

:class:`InterpreterEngine` implements the shared Volcano-style cost
model; the two concrete classes configure granularity (1 vs 1024
tuples per ``next()``), per-expression interpretation cost, storage
layout (full row pages vs single columns) and code footprint.

Morsel mode (``row_range=(lo, hi)``, see :mod:`repro.engines.morsel`):
each morsel records the interpretation cost of its own rows -- all
scalar quantities are dyadic and merge exactly -- and defers the
non-dyadic operation-mix rates (``alu = instructions * 0.30`` etc.)
through :attr:`PENDING_RATES`, so the single resolution at finalization
rounds identically for any partitioning.  TPC-H result values come
from the reference implementations (the interpreters model *cost*, not
novel execution), evaluated once in the merge finisher.
"""

from __future__ import annotations

import numpy as np

from repro.core.exactsum import ExactSum
from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    MergedPartials,
    QueryResult,
    projection_columns,
    resolve_selection_cached,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.engines.morsel import (
    bytes_for_rows,
    resolve_range,
    row_scan_bytes,
    shared_structure,
)
from repro.engines.scan import (
    AGG_STATE_KEY,
    decision_details,
    exact_sum_column,
    predicate_mask,
    record_encoded_agg,
)
from repro.storage import Database
from repro.tpch import schema as sc


class InterpreterEngine(Engine):
    """Shared Volcano-style interpreter cost model."""

    #: Instructions per operator ``next()`` call (virtual dispatch,
    #: tuple-slot management, scheduling) -- paid per block.
    NEXT_COST = 250.0
    #: Instructions to interpret one expression term on one tuple.
    EXPR_COST = 150.0
    #: Tuples delivered per ``next()`` call (1 = tuple-at-a-time).
    BLOCK_SIZE = 1.0
    #: Random accesses into engine state (buffer manager, operator
    #: state, tuple descriptors) per operator per tuple.
    STATE_ACCESSES = 1.0
    #: Working set of that engine state.
    STATE_WS_BYTES = 48 * 1024 * 1024
    #: Serially dependent dispatch loads per operator per tuple.
    CHAIN_PER_OP = 4.0
    #: Misprediction rate of the interpreter's indirect dispatch
    #: branches (real interpreters: a few percent).
    DISPATCH_MISPREDICT = 0.06
    #: Dispatch branches per operator per tuple.
    DISPATCH_BRANCHES = 2.0
    #: Per-value interpretation checks (NULL/type/overflow) carry one
    #: lightly mispredicted branch per expression term.
    VALUE_CHECK_MISPREDICT = 0.015
    #: Fatter hash-table entries than the hand-rolled engines.
    HT_SIZE_FACTOR = 2.0
    #: Effective ILP of the interpretation code: virtual dispatch and
    #: tuple-slot indirection keep the 4-wide core under-filled; the
    #: gap surfaces as Execution stalls (Figure 2).
    EFFECTIVE_ILP = 2.2

    #: The interpreter operation mix (30% ALU, 30% loads, 5% stores of
    #: retired instructions) is applied to the merged instruction total
    #: once, at finalization -- the rates are not dyadic, so per-morsel
    #: application would make merged profiles partition-dependent.
    PENDING_RATES = {
        "interp": (("alu", 0.30), ("loads", 0.30), ("stores", 0.05)),
    }

    def _new_work(self):
        work = super()._new_work()
        work.effective_ilp = self.EFFECTIVE_ILP
        return work

    # ------------------------------------------------------------------
    def _interp_work(
        self, work, tuples: float, n_operators: float, term_evals: float
    ) -> None:
        """Interpretation cost of pushing ``tuples`` through a plan of
        ``n_operators`` evaluating ``term_evals`` expression terms in
        total (term_evals is already multiplied by the tuple counts the
        terms actually run on).

        Records unconditionally (zero-count placeholders included) so
        morsel partials stay congruent; :meth:`Engine._finalize_profile`
        prunes the sub-one-event entries the old guards skipped."""
        next_calls = tuples * n_operators / self.BLOCK_SIZE
        instructions = next_calls * self.NEXT_COST + term_evals * self.EXPR_COST
        work.record_work(
            instructions=instructions,
            chain=tuples * self.CHAIN_PER_OP * n_operators / self.BLOCK_SIZE,
        )
        work.record_pending("interp", instructions)
        state_accesses = tuples * self.STATE_ACCESSES * n_operators / self.BLOCK_SIZE
        # Operator-state and tuple-descriptor lookups chase pointers:
        # the next access depends on the previous load.
        work.record_random(
            "interpreter state", state_accesses, self.STATE_WS_BYTES,
            dependent=True,
        )
        dispatch = tuples * self.DISPATCH_BRANCHES * n_operators / self.BLOCK_SIZE
        work.record_branch_stream(
            "interpreter dispatch", dispatch, 0.5, self.DISPATCH_MISPREDICT
        )
        work.record_branch_stream(
            "interpreted value checks", term_evals, 0.5,
            self.VALUE_CHECK_MISPREDICT,
        )

    def _scan_bytes(self, db: Database, table: str, columns, lo: int, hi: int) -> float:
        """Bytes a scan of rows ``[lo, hi)`` of ``table`` moves
        (layout-dependent)."""
        raise NotImplementedError

    def _full_scan_bytes(self, db: Database, table: str, columns) -> float:
        return self._scan_bytes(db, table, columns, 0, db.table(table).n_rows)

    # ------------------------------------------------------------------
    # Micro-benchmarks
    # ------------------------------------------------------------------
    def run_projection(
        self, db: Database, degree: int, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        if degree == 1:
            # Single column: ``0.0 + v`` carries the same ExactSum units
            # as ``v`` (both signed zeros convert to zero units), so the
            # sum may come straight from the storage codec.
            total_sum, mode, why = exact_sum_column(lineitem, columns[0], lo, hi)
            decision = (("sum", columns[0], mode, why),)
        else:
            # Higher degrees round per row inside ``a + b + ...``; no
            # per-column code rebase reproduces that, so decode.
            total = np.zeros(m)
            for column in columns:
                total = total + lineitem[column][lo:hi]
            total_sum = ExactSum.of_array(total)
            decision = tuple(
                ("sum", column, "decoded", "per-row-rounding")
                for column in columns
            )

        work = self._new_work()
        # Plan: Scan -> Project -> Aggregate.
        self._interp_work(work, m, n_operators=3, term_evals=m * 2 * degree)
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns, lo, hi))
        state = {"sum": total_sum, AGG_STATE_KEY: decision}
        label = f"projection-p{degree}"
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_projection(
            db, MergedPartials(state, work, m), degree=degree, simd=simd
        )

    def _finish_projection(
        self, db: Database, merged: MergedPartials, degree: int, simd: bool = False
    ) -> QueryResult:
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        details = {}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            f"projection-p{degree}",
            merged.state["sum"].total(),
            merged.tuples,
            work,
            details,
        )

    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
        row_range=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection_cached(db, selectivity, thresholds)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        proj_cols = projection_columns(4)

        masks = [
            (column, predicate_mask(lineitem, column, "le", threshold, lo, hi))
            for column, threshold in thresholds.items()
        ]
        combined = masks[0][1] & masks[1][1] & masks[2][1]
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)
        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][lo:hi][qualifying]

        work = self._new_work()
        # Plan: Scan -> Filter -> Project -> Aggregate.  The filter
        # interprets predicates tuple-at-a-time with short-circuiting,
        # so later predicates run on survivors only; the branch-free
        # variant evaluates the projection for every tuple.
        work_terms, _survivors = self._filter_terms_and_streams(work, masks, m, predicated)
        projected_tuples = m if predicated else q
        term_evals = work_terms + projected_tuples * 2 * len(proj_cols)
        self._interp_work(work, m, n_operators=4, term_evals=term_evals)
        columns = [name for name, _ in masks] + list(proj_cols)
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns, lo, hi))
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        state = {"sum": ExactSum.of_array(projected), "qualifying": q}
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_selection(
            db,
            MergedPartials(state, work, m),
            selectivity=selectivity,
            predicated=predicated,
            simd=simd,
            thresholds=thresholds,
        )

    def _finish_selection(
        self,
        db: Database,
        merged: MergedPartials,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        selectivity, _ = resolve_selection_cached(db, selectivity, thresholds)
        n = merged.tuples
        q = merged.state["qualifying"]
        work = self._finalize_profile(merged.work)
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
        }
        return QueryResult(label, merged.state["sum"].total(), n, work, details)

    def _filter_terms_and_streams(self, work, masks, m: int, predicated: bool):
        """Short-circuit predicate evaluation: returns the number of
        term evaluations and records per-predicate branch streams."""
        alive = np.ones(m, dtype=bool)
        term_evals = 0.0
        for name, mask in masks:
            candidates = int(alive.sum())
            term_evals += candidates * 2
            if not predicated:
                work.record_branch_outcomes(f"{name} predicate", mask[alive])
            alive = alive & mask
        if predicated:
            # Branch-free interpretation evaluates everything.
            term_evals = m * 2 * len(masks)
        return term_evals, int(alive.sum())

    def _join_table(self, db: Database, spec) -> ChainedHashTable:
        return shared_structure(
            db,
            ("join-build", spec.size),
            lambda: ChainedHashTable(db.table(spec.build_table)[spec.build_key]),
        )

    def run_join(
        self, db: Database, size: str, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        build = db.table(spec.build_table)
        probe = db.table(spec.probe_table)
        lo, hi = resolve_range(row_range, probe.n_rows)
        m = hi - lo
        lead = lo == 0

        table = self._join_table(db, spec)
        result = table.probe(probe[spec.probe_key][lo:hi])
        matched = result.found
        matches = int(matched.sum())
        projected = np.zeros(matches)
        for column in spec.sum_columns:
            projected = projected + probe[column][lo:hi][matched]

        work = self._new_work()
        # Build pipeline: Scan -> HashBuild over the build side (global
        # work, recorded by the lead morsel only).
        n_build = build.n_rows if lead else 0
        self._interp_work(work, n_build, n_operators=2, term_evals=n_build)
        work.record_sequential_read(
            self._full_scan_bytes(db, spec.build_table, [spec.build_key]) if lead else 0.0
        )
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("hash build scatter", n_build, ws)
        # Probe pipeline: Scan -> HashJoin -> Project -> Aggregate.
        degree = len(spec.sum_columns)
        self._interp_work(
            work, m, n_operators=4,
            term_evals=m * 2 + matches * 2 * degree,
        )
        work.record_sequential_read(
            self._scan_bytes(db, spec.probe_table, [spec.probe_key, *spec.sum_columns], lo, hi)
        )
        work.record_random("hash probe heads", m, ws)
        work.record_random("hash chain walk", result.extra_walk, ws, dependent=True)
        work.record_branch_outcomes("probe hit", result.found)
        state = {"sum": ExactSum.of_array(projected), "found": matches}
        if row_range is not None:
            return self._partial_result(f"join-{size}", state, m, work, (lo, hi))
        return self._finish_join(
            db, MergedPartials(state, work, m), size=size, simd=simd
        )

    def _finish_join(
        self, db: Database, merged: MergedPartials, size: str, simd: bool = False
    ) -> QueryResult:
        spec = JOIN_SPECS[size]
        table = self._join_table(db, spec)
        n_probe = merged.tuples
        work = self._finalize_profile(merged.work)
        details = {
            "join_size": size,
            "hit_fraction": merged.state["found"] / n_probe if n_probe else 0.0,
            "chain_stats": table.chain_stats(),
        }
        return QueryResult(
            f"join-{size}", merged.state["sum"].total(), n_probe, work, details
        )

    def _groupby_table(self, db: Database) -> GroupByHashTable:
        def build():
            lineitem = db.table("lineitem")
            composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
            return GroupByHashTable(composite)

        return shared_structure(db, "groupby-micro", build)

    def run_groupby(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        table = self._groupby_table(db)

        work = self._new_work()
        self._interp_work(work, m, n_operators=3, term_evals=m * 3)
        work.record_sequential_read(
            self._scan_bytes(
                db, "lineitem", ["l_partkey", "l_returnflag", "l_extendedprice"], lo, hi
            )
        )
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("group table update", m, ws)
        # Constant-rate stream: every morsel records the same global
        # fraction, so the merged stream keeps it bit-for-bit.
        work.record_branch_stream("group collision", m, table.collision_fraction())
        total, mode, why = exact_sum_column(lineitem, "l_extendedprice", lo, hi)
        state = {
            "sum": total,
            AGG_STATE_KEY: (("sum", "l_extendedprice", mode, why),),
        }
        if row_range is not None:
            return self._partial_result("groupby-micro", state, m, work, (lo, hi))
        return self._finish_groupby(db, MergedPartials(state, work, m))

    def _finish_groupby(self, db: Database, merged: MergedPartials) -> QueryResult:
        table = self._groupby_table(db)
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        details = {"groups": table.n_groups, "chain_stats": table.chain_stats()}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            "groupby-micro", merged.state["sum"].total(), merged.tuples, work, details
        )

    # ------------------------------------------------------------------
    # TPC-H: interpretation cost over the reference plans.
    # ------------------------------------------------------------------
    def run_q1(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        mask = predicate_mask(lineitem, "l_shipdate", "le", sc.DATE_1998_09_02, lo, hi)
        q = int(mask.sum())

        work = self._new_work()
        self._interp_work(work, m, n_operators=4, term_evals=m * 2 + q * 14)
        columns = [
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        ]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns, lo, hi))
        work.record_branch_outcomes("shipdate filter", mask)
        # The interpreters model *cost*; values come from the reference
        # implementation in the finisher, so no aggregate here can move
        # into the code domain -- recorded honestly in the decision.
        decision = tuple(
            (slot, column, "decoded", "finisher-reference")
            for slot, column in (
                ("sum_qty", "l_quantity"),
                ("sum_base_price", "l_extendedprice"),
                ("sum_disc_price", None),
                ("sum_charge", None),
            )
        )
        state = {"qualifying": q, AGG_STATE_KEY: decision}
        if row_range is not None:
            return self._partial_result("Q1", state, m, work, (lo, hi))
        return self._finish_q1(db, MergedPartials(state, work, m))

    def _finish_q1(self, db: Database, merged: MergedPartials) -> QueryResult:
        from repro.tpch.queries import q1_reference

        decision = merged.state.pop(AGG_STATE_KEY, None)
        groups = q1_reference(db)
        work = self._finalize_profile(merged.work)
        details = {"groups": len(groups)}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult("Q1", groups, merged.tuples, work, details)

    def run_q6(self, db: Database, predicated: bool = False, row_range=None) -> QueryResult:
        from repro.tpch.queries import q6_predicates

        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        predicates = [(name, mask[lo:hi]) for name, mask in q6_predicates(db)]

        work = self._new_work()
        alive = np.ones(m, dtype=bool)
        term_evals = 0.0
        for name, mask in predicates:
            candidates = int(alive.sum())
            term_evals += candidates * 2
            if not predicated:
                work.record_branch_outcomes(f"{name}", mask[alive])
            alive &= mask
        if predicated:
            term_evals = m * 2 * len(predicates)
        q = int(alive.sum())
        self._interp_work(work, m, n_operators=4, term_evals=term_evals + q * 3)
        columns = ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns, lo, hi))
        state = {"qualifying": q}
        label = "Q6-predicated" if predicated else "Q6"
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_q6(db, MergedPartials(state, work, m), predicated=predicated)

    def _finish_q6(
        self, db: Database, merged: MergedPartials, predicated: bool = False
    ) -> QueryResult:
        from repro.tpch.queries import q6_reference

        value = q6_reference(db)
        n = merged.tuples
        q = merged.state["qualifying"]
        work = self._finalize_profile(merged.work)
        label = "Q6-predicated" if predicated else "Q6"
        return QueryResult(label, value, n, work, {"selectivity": q / n if n else 0.0})

    def _q9_green_keys(self, db: Database) -> np.ndarray:
        def build():
            part = db.table("part")
            return part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]

        return shared_structure(db, "q9-green-keys", build)

    def run_q9(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        supplier = db.table("supplier")
        partsupp = db.table("partsupp")
        orders = db.table("orders")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        lead = lo == 0

        green = np.isin(lineitem["l_partkey"][lo:hi], self._q9_green_keys(db))
        q = int(green.sum())
        work = self._new_work()
        # Six-table plan: scans + four hash joins + aggregation.  The
        # build-side pipelines are global work (lead morsel only).
        self._interp_work(work, m, n_operators=5, term_evals=m * 2 + q * 16)
        n_build = (partsupp.n_rows + supplier.n_rows + orders.n_rows) if lead else 0
        self._interp_work(work, n_build, n_operators=2, term_evals=n_build)
        columns = [
            "l_partkey", "l_suppkey", "l_orderkey",
            "l_extendedprice", "l_discount", "l_quantity",
        ]
        work.record_sequential_read(self._scan_bytes(db, "lineitem", columns, lo, hi))
        work.record_sequential_read(
            self._full_scan_bytes(db, "partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
            if lead else 0.0
        )
        work.record_sequential_read(
            self._full_scan_bytes(db, "orders", ["o_orderkey", "o_orderdate"])
            if lead else 0.0
        )
        ht_bytes = self.HT_SIZE_FACTOR * 24 * (partsupp.n_rows + orders.n_rows)
        work.record_random("hash probe heads", m + 3.0 * q, ht_bytes)
        work.record_branch_outcomes("green part probe", green)
        state = {"green": q}
        if row_range is not None:
            return self._partial_result("Q9", state, m, work, (lo, hi))
        return self._finish_q9(db, MergedPartials(state, work, m))

    def _finish_q9(self, db: Database, merged: MergedPartials) -> QueryResult:
        from repro.tpch.queries import q9_reference

        value = q9_reference(db)
        n = merged.tuples
        q = merged.state["green"]
        work = self._finalize_profile(merged.work)
        return QueryResult("Q9", value, n, work, {"green_fraction": q / n if n else 0.0})

    def _q18_group_table(self, db: Database) -> GroupByHashTable:
        return shared_structure(
            db,
            ("q18-groups", 0.25),
            lambda: GroupByHashTable(db.table("lineitem")["l_orderkey"], target_load=0.25),
        )

    def run_q18(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        lead = lo == 0

        table = self._q18_group_table(db)
        work = self._new_work()
        self._interp_work(work, m, n_operators=4, term_evals=m * 4)
        work.record_sequential_read(
            self._scan_bytes(db, "lineitem", ["l_orderkey", "l_quantity"], lo, hi)
        )
        work.record_sequential_read(
            self._full_scan_bytes(db, "orders", ["o_orderkey", "o_custkey"])
            if lead else 0.0
        )
        ws = table.working_set_bytes * self.HT_SIZE_FACTOR
        work.record_random("group table update", m, ws)
        work.record_branch_stream("group collision", m, table.collision_fraction())
        if row_range is not None:
            return self._partial_result("Q18", {}, m, work, (lo, hi))
        return self._finish_q18(db, MergedPartials({}, work, m))

    def _finish_q18(self, db: Database, merged: MergedPartials) -> QueryResult:
        from repro.tpch.queries import q18_reference

        value = q18_reference(db)
        table = self._q18_group_table(db)
        work = self._finalize_profile(merged.work)
        details = {"groups": table.n_groups, "winners": len(value)}
        return QueryResult("Q18", value, merged.tuples, work, details)


class RowStoreEngine(InterpreterEngine):
    """"DBMS R": traditional commercial row store.

    Tuple-at-a-time Volcano interpretation over slotted row pages: a
    scan drags *entire rows* through the memory hierarchy and every
    tuple pays the full dispatch/interpretation tax.
    """

    name = "DBMS R"
    code_footprint_bytes = 768 * 1024
    BLOCK_SIZE = 1.0
    NEXT_COST = 250.0
    EXPR_COST = 150.0
    STATE_ACCESSES = 2.0
    CHAIN_PER_OP = 4.0
    EFFECTIVE_ILP = 2.5

    def _scan_bytes(self, db: Database, table: str, columns, lo: int, hi: int) -> float:
        # Full rows, page-granular; pages attribute to the morsel
        # containing their first row (see morsel.row_scan_bytes).
        return row_scan_bytes(db, table, lo, hi)

    def morsel_position_signature(self, db, method, kwargs, lo, hi):
        # Page-granular scan bytes depend on where [lo, hi) falls in the
        # page grid, not just on its length; the byte count itself is
        # the exact signature.  All prunable methods scan lineitem.
        return row_scan_bytes(db, "lineitem", lo, hi)


class ColumnStoreEngine(InterpreterEngine):
    """"DBMS C": the column-store extension of DBMS R.

    Block-at-a-time interpretation over single columns: the ``next()``
    tax is amortised over ~1000 values and scans touch only the needed
    columns, but each value still pays per-value interpretation
    (type/NULL dispatch), keeping the instruction footprint an order of
    magnitude above the high-performance engines.
    """

    name = "DBMS C"
    code_footprint_bytes = 640 * 1024
    BLOCK_SIZE = 1024.0
    NEXT_COST = 250.0
    EXPR_COST = 35.0
    STATE_ACCESSES = 16.0  # per block: position lists, block headers
    CHAIN_PER_OP = 256.0  # per block
    DISPATCH_BRANCHES = 16.0  # per block
    DISPATCH_MISPREDICT = 0.08
    EFFECTIVE_ILP = 3.9

    def _scan_bytes(self, db: Database, table: str, columns, lo: int, hi: int) -> float:
        return float(
            bytes_for_rows(db.table(table), dict.fromkeys(columns), lo, hi)
        )
