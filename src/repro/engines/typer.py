"""Typer: the compiled, data-centric execution model (HyPer-style).

Typer compiles each query into fused per-tuple loops: operators are
inlined into a single pipeline, predicates of a conjunction are
evaluated together (so the dominant branch sees the *combined*
selectivity, Section 4), and no intermediate results are materialised.
The hot code of one query is a few kilobytes -- far below the L1I.

Execution here is numpy-vectorised for speed, but the recorded work is
that of the compiled per-tuple loop: per-tuple instruction counts,
operation mix, branch outcome streams (measured from the actual data)
and the exact bytes/accesses the fused pipeline touches.

Every ``run_*`` method accepts ``row_range=(lo, hi)`` and then executes
only that morsel of the partitioned table (see
:mod:`repro.engines.morsel`): per-morsel value state is carried exactly
(:class:`~repro.core.exactsum.ExactSum`, integer counts), every
branch/random/sparse stream is recorded unconditionally in a fixed
order (zero-count placeholders keep partial profiles congruent), and
the single-shot path is *defined* as one full-range morsel passed to
the same ``_finish_*`` merge finisher the parallel executor uses -- so
merged morsel runs are bit-identical to single-shot runs by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.exactsum import ExactSum
from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    MergedPartials,
    OperatorWork,
    QueryResult,
    projection_columns,
    resolve_selection_cached,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.engines.morsel import (
    bytes_for_rows,
    gather_lines,
    resolve_range,
    shared_structure,
)
from repro.engines.scan import (
    AGG_STATE_KEY,
    between_mask,
    combined_key,
    decision_details,
    exact_sum_column,
    predicate_mask,
    q1_encoded_aggregation,
    record_encoded_agg,
)
from repro.storage import Database
from repro.tpch import schema as sc


class TyperEngine(Engine):
    """Compiled query engine model."""

    name = "Typer"
    code_footprint_bytes = 24 * 1024
    supports_simd = False

    #: Amortised loop-control instructions per tuple (inc/cmp/branch,
    #: partially hidden by compiler unrolling).
    LOOP_INSTRS = 4.0
    #: Instructions per hash computation (multiply + shift + mask).
    HASH_INSTRS = 3.0
    #: Instructions per hash-table entry visit (load key + compare).
    VISIT_INSTRS = 2.0

    # ------------------------------------------------------------------
    # Projection (Section 3)
    # ------------------------------------------------------------------
    def run_projection(
        self, db: Database, degree: int, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo

        if degree == 1:
            # Single column: ``0.0 + v`` carries the same ExactSum units
            # as ``v`` (both signed zeros convert to zero units), so the
            # sum may come straight from the storage codec.
            total_sum, mode, why = exact_sum_column(lineitem, columns[0], lo, hi)
            decision = (("sum", columns[0], mode, why),)
        else:
            # Higher degrees round per row inside ``a + b + ...``; no
            # per-column code rebase reproduces that, so decode.
            total = np.zeros(m)
            for column in columns:
                total = total + lineitem[column][lo:hi]
            total_sum = ExactSum.of_array(total)
            decision = tuple(
                ("sum", column, "decoded", "per-row-rounding")
                for column in columns
            )

        work = self._new_work()
        # Fused loop: degree loads, degree FP adds (including the
        # accumulator), amortised loop control.
        work.record_work(
            instructions=m * (self.LOOP_INSTRS + 2.0 * degree),
            alu=m * degree,
            loads=m * degree,
            chain=m,  # serial accumulator update
        )
        work.record_sequential_read(bytes_for_rows(lineitem, columns, lo, hi))
        state = {"sum": total_sum, AGG_STATE_KEY: decision}
        label = f"projection-p{degree}"
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_projection(
            db, MergedPartials(state, work, m), degree=degree, simd=simd
        )

    def _finish_projection(
        self, db: Database, merged: MergedPartials, degree: int, simd: bool = False
    ) -> QueryResult:
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        details = {}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            f"projection-p{degree}",
            merged.state["sum"].total(),
            merged.tuples,
            work,
            details,
        )

    # ------------------------------------------------------------------
    # Selection (Sections 4 and 7)
    # ------------------------------------------------------------------
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
        row_range=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection_cached(db, selectivity, thresholds)
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        proj_cols = projection_columns(4)

        masks = [
            (column, predicate_mask(lineitem, column, "le", threshold, lo, hi))
            for column, threshold in thresholds.items()
        ]
        combined = masks[0][1] & masks[1][1] & masks[2][1]
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)

        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][lo:hi][qualifying]

        work = self._new_work()
        pred_bytes = bytes_for_rows(lineitem, [name for name, _ in masks], lo, hi)
        proj_bytes = bytes_for_rows(lineitem, proj_cols, lo, hi)
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        if predicated:
            # Branch-free: all predicates and the whole projection are
            # computed for every tuple; the predicate mask becomes a
            # multiplicand (Section 7: pays off at 50/90%, not at 10%).
            work.record_work(
                instructions=m * (self.LOOP_INSTRS + 3 * 3 + 2 + 4 * 2 + 2),
                alu=m * (3 + 2 + 4 + 2),
                loads=m * (3 + 4),
                chain=m,
            )
            work.record_sequential_read(pred_bytes + proj_bytes)
        else:
            # Branched: predicates are evaluated together branch-free,
            # one branch on the combined outcome guards the projection.
            work.record_work(
                instructions=m * (self.LOOP_INSTRS + 3 * 2 + 2 + 1)
                + q * (4 * 2),
                alu=m * (3 + 2) + q * 4,
                loads=m * 3 + q * 4,
                chain=q,
            )
            work.record_sequential_read(pred_bytes)
            work.record_branch_outcomes("combined predicate", combined)
            touched, total_lines = gather_lines(qualifying + lo, lo, hi)
            work.record_gather("projection gather", proj_bytes, touched, total_lines)
        state = {"sum": ExactSum.of_array(projected), "qualifying": q}
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_selection(
            db,
            MergedPartials(state, work, m),
            selectivity=selectivity,
            predicated=predicated,
            simd=simd,
            thresholds=thresholds,
        )

    def _finish_selection(
        self,
        db: Database,
        merged: MergedPartials,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        selectivity, _ = resolve_selection_cached(db, selectivity, thresholds)
        n = merged.tuples
        q = merged.state["qualifying"]
        work = self._finalize_profile(merged.work)
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
        }
        return QueryResult(label, merged.state["sum"].total(), n, work, details)

    # ------------------------------------------------------------------
    # Join (Section 5)
    # ------------------------------------------------------------------
    def _join_table(self, db: Database, spec) -> ChainedHashTable:
        return shared_structure(
            db,
            ("join-build", spec.size),
            lambda: ChainedHashTable(db.table(spec.build_table)[spec.build_key]),
        )

    def run_join(
        self, db: Database, size: str, simd: bool = False, row_range=None
    ) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        probe = db.table(spec.probe_table)
        lo, hi = resolve_range(row_range, probe.n_rows)
        m = hi - lo
        lead = lo == 0

        table = self._join_table(db, spec)
        result = table.probe(probe[spec.probe_key][lo:hi])
        matched = result.found

        projected = np.zeros(int(matched.sum()))
        for column in spec.sum_columns:
            projected = projected + probe[column][lo:hi][matched]

        operators = OperatorWork(self)
        self._record_build(
            operators.operator("hash build"),
            table,
            db.table(spec.build_table).bytes_for([spec.build_key]),
            lead=lead,
        )
        probe_work = operators.operator("hash probe")
        self._record_probe(probe_work, table, result, m)
        probe_work.record_work(
            instructions=m * (self.LOOP_INSTRS + 1),
            loads=m,
        )
        probe_work.record_sequential_read(
            bytes_for_rows(probe, [spec.probe_key], lo, hi)
        )
        # Aggregation over the matches: the summed columns.
        degree = len(spec.sum_columns)
        matches = int(matched.sum())
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_work(
            instructions=matches * 2 * degree,
            alu=matches * degree,
            loads=matches * degree,
            chain=matches,
        )
        aggregate_work.record_sequential_read(
            bytes_for_rows(probe, spec.sum_columns, lo, hi)
        )
        work = operators.total()
        state = {"sum": ExactSum.of_array(projected), "found": matches}
        if row_range is not None:
            return self._partial_result(
                f"join-{size}", state, m, work, (lo, hi), operators.profiles
            )
        return self._finish_join(
            db,
            MergedPartials(state, work, m, operators.profiles),
            size=size,
            simd=simd,
        )

    def _finish_join(
        self, db: Database, merged: MergedPartials, size: str, simd: bool = False
    ) -> QueryResult:
        spec = JOIN_SPECS[size]
        table = self._join_table(db, spec)
        n_probe = merged.tuples
        work = self._finalize_profile(merged.work)
        operators = {
            name: self._finalize_profile(profile)
            for name, profile in merged.operators.items()
        }
        found = merged.state["found"]
        details = {
            "join_size": size,
            "build_rows": db.table(spec.build_table).n_rows,
            "probe_rows": n_probe,
            "hit_fraction": found / n_probe if n_probe else 0.0,
            "chain_stats": table.chain_stats(),
            "hash_table_bytes": table.working_set_bytes,
            "operators": operators,
        }
        return QueryResult(
            f"join-{size}", merged.state["sum"].total(), n_probe, work, details
        )

    def _record_build(self, work, table: ChainedHashTable, key_bytes: float, lead: bool = True) -> None:
        """Hash-table build: hash each key, scatter-store the entry.

        Builds are global work: the lead morsel (``lo == 0``) records
        the full build; other morsels record a congruent zero-count
        placeholder so partial profiles merge positionally."""
        n = table.n_keys if lead else 0
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + self.HASH_INSTRS + 3),
            alu=n,
            loads=n,
            stores=n * 2,
            hash_ops=n,
        )
        work.record_sequential_read(key_bytes if lead else 0.0)
        work.record_random(
            "hash build scatter", n, table.working_set_bytes, dependent=False
        )

    def _record_probe(self, work, table: ChainedHashTable, result, n_probe: int) -> None:
        """Hash-table probe: hash, head load, chain walk, verify."""
        work.record_work(
            instructions=n_probe * (self.HASH_INSTRS + 1)
            + result.comparisons * self.VISIT_INSTRS,
            alu=n_probe,
            loads=n_probe + result.comparisons,
            hash_ops=n_probe,
        )
        work.record_random(
            "hash probe heads", n_probe, table.working_set_bytes, dependent=False
        )
        work.record_random(
            "hash chain walk",
            result.extra_walk,
            table.working_set_bytes,
            dependent=True,
        )
        work.record_branch_outcomes("probe hit", result.found)
        walk_fraction = (
            result.extra_walk / result.comparisons if result.comparisons else 0.0
        )
        work.record_branch_stream("chain continue", result.comparisons, walk_fraction)

    # ------------------------------------------------------------------
    # Group by (Section 6 discussion)
    # ------------------------------------------------------------------
    def _groupby_table(self, db: Database) -> GroupByHashTable:
        def build():
            lineitem = db.table("lineitem")
            composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
            return GroupByHashTable(composite)

        return shared_structure(db, "groupby-micro", build)

    def run_groupby(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        table = self._groupby_table(db)

        work = self._new_work()
        self._record_groupby_updates(
            work,
            table,
            bytes_for_rows(
                lineitem, ["l_partkey", "l_returnflag", "l_extendedprice"], lo, hi
            ),
            lo,
            hi,
        )
        total, mode, why = exact_sum_column(lineitem, "l_extendedprice", lo, hi)
        state = {
            "sum": total,
            AGG_STATE_KEY: (("sum", "l_extendedprice", mode, why),),
        }
        if row_range is not None:
            return self._partial_result("groupby-micro", state, m, work, (lo, hi))
        return self._finish_groupby(db, MergedPartials(state, work, m))

    def _finish_groupby(self, db: Database, merged: MergedPartials) -> QueryResult:
        table = self._groupby_table(db)
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        details = {
            "groups": table.n_groups,
            "chain_stats": table.chain_stats(),
            "collision_fraction": table.collision_fraction(),
        }
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult(
            "groupby-micro", merged.state["sum"].total(), merged.tuples, work, details
        )

    def _record_groupby_updates(
        self, work, table: GroupByHashTable, col_bytes: float, lo: int, hi: int
    ) -> None:
        depths = table._depth[table.group_ids[lo:hi]]
        n = hi - lo
        comparisons = int(depths.sum())
        collisions = int((depths > 1).sum())
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + self.HASH_INSTRS + 3)
            + comparisons * self.VISIT_INSTRS,
            alu=n * 2,
            loads=n * 2 + comparisons,
            stores=n,
            hash_ops=n,
            chain=n,
        )
        work.record_sequential_read(col_bytes)
        work.record_random(
            "group table update", n, table.working_set_bytes, dependent=False
        )
        work.record_random(
            "group chain walk", comparisons - n, table.working_set_bytes, dependent=True
        )
        work.record_branch_stream(
            "group collision", n, collisions / n if n else 0.0
        )

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_q1(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        mask = predicate_mask(lineitem, "l_shipdate", "le", sc.DATE_1998_09_02, lo, hi)
        q = int(mask.sum())

        encoded_payload, agg_decision = q1_encoded_aggregation(lineitem, lo, hi, mask)
        price = lineitem["l_extendedprice"][lo:hi][mask]
        discount = lineitem["l_discount"][lo:hi][mask]
        tax = lineitem["l_tax"][lo:hi][mask]
        disc_price = price * (1.0 - discount)
        charge = disc_price * (1.0 + tax)
        if encoded_payload is not None:
            # One combined bincount over (flag x status x quantity-code)
            # cells delivered both the exact quantity sum and the set of
            # observed group keys; the decoded quantity/key columns are
            # never materialised.
            sum_qty, keys = encoded_payload
        else:
            sum_qty = ExactSum.of_array(lineitem["l_quantity"][lo:hi][mask])
            group_key = combined_key(
                lineitem, "l_returnflag", "l_linestatus", 2, lo, hi, take=mask
            )
            keys = set(np.unique(group_key).tolist())

        columns = (
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        )
        work = self._new_work()
        # Fused scan+filter+aggregate: the eight aggregate updates and
        # the derived expressions dominate the per-tuple arithmetic.
        work.record_work(
            instructions=m * (self.LOOP_INSTRS + 2) + q * (6 + 4 + self.HASH_INSTRS + 8 * 3),
            alu=m + q * (4 + 2 + 8),
            loads=m + q * (6 + 8),
            stores=q * 8,
            hash_ops=q,
            chain=q * 3.0,  # partially serialised aggregate chains (4 groups)
        )
        work.record_sequential_read(bytes_for_rows(lineitem, columns, lo, hi))
        work.record_branch_outcomes("shipdate filter", mask)
        # The 4-group aggregation table lives in L1: no random pattern.
        state = {
            "sum_qty": sum_qty,
            "sum_base_price": ExactSum.of_array(price),
            "sum_disc_price": ExactSum.of_array(disc_price),
            "sum_charge": ExactSum.of_array(charge),
            "keys": keys,
            AGG_STATE_KEY: agg_decision,
        }
        if row_range is not None:
            return self._partial_result("Q1", state, m, work, (lo, hi))
        return self._finish_q1(db, MergedPartials(state, work, m))

    def _finish_q1(self, db: Database, merged: MergedPartials) -> QueryResult:
        decision = merged.state.pop(AGG_STATE_KEY, None)
        work = self._finalize_profile(merged.work)
        groups = len(merged.state["keys"])
        value = {
            "sum_qty": merged.state["sum_qty"].total(),
            "sum_base_price": merged.state["sum_base_price"].total(),
            "sum_disc_price": merged.state["sum_disc_price"].total(),
            "sum_charge": merged.state["sum_charge"].total(),
            "groups": groups,
        }
        details = {"groups": groups}
        if decision:
            record_encoded_agg(decision)
            details["encoded_agg"] = decision_details(decision)
        return QueryResult("Q1", value, merged.tuples, work, details)

    def run_q6(self, db: Database, predicated: bool = False, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        date_pass = between_mask(
            lineitem, "l_shipdate", sc.DATE_1994_01_01, sc.DATE_1995_01_01,
            lo, hi, high_op="lt",
        )
        disc_pass = between_mask(lineitem, "l_discount", 0.05, 0.07, lo, hi)
        qty_pass = predicate_mask(lineitem, "l_quantity", "lt", 24.0, lo, hi)
        combined = date_pass & disc_pass & qty_pass
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)
        amounts = (
            lineitem["l_extendedprice"][lo:hi][qualifying]
            * lineitem["l_discount"][lo:hi][qualifying]
        )

        pred_cols = ("l_shipdate", "l_discount", "l_quantity")
        work = self._new_work()
        work.record_sequential_read(bytes_for_rows(lineitem, pred_cols, lo, hi))
        price_bytes = bytes_for_rows(lineitem, ["l_extendedprice"], lo, hi)
        if predicated:
            work.record_work(
                instructions=m * (self.LOOP_INSTRS + 5 + 4 + 3),
                alu=m * (5 + 4 + 2),
                loads=m * 4,
                chain=m,
            )
            work.record_sequential_read(price_bytes)
        else:
            # The compiled conjunction short-circuits per predicate
            # *column* group: each BETWEEN pair is evaluated branch-free
            # and guarded by one branch, so the predictor sees three
            # conditional streams (Figure 16 shows visible branch
            # stalls for Typer on Q6).
            alive = np.ones(m, dtype=bool)
            for name, mask in (
                ("shipdate range", date_pass),
                ("discount range", disc_pass),
                ("quantity bound", qty_pass),
            ):
                work.record_branch_outcomes(name, mask[alive])
                alive &= mask
            c1 = int(date_pass.sum())
            c12 = int((date_pass & disc_pass).sum())
            work.record_work(
                instructions=m * (self.LOOP_INSTRS + 3 + 1)
                + c1 * 3
                + c12 * 2
                + q * 4,
                alu=m * 3 + c1 * 2 + c12 + q * 2,
                loads=m + c1 + c12 + q,
                chain=q,
            )
            touched, total_lines = gather_lines(qualifying + lo, lo, hi)
            work.record_gather("price gather", price_bytes, touched, total_lines)
        state = {"sum": ExactSum.of_array(amounts), "qualifying": q}
        label = "Q6-predicated" if predicated else "Q6"
        if row_range is not None:
            return self._partial_result(label, state, m, work, (lo, hi))
        return self._finish_q6(db, MergedPartials(state, work, m), predicated=predicated)

    def _finish_q6(
        self, db: Database, merged: MergedPartials, predicated: bool = False
    ) -> QueryResult:
        work = self._finalize_profile(merged.work)
        n = merged.tuples
        q = merged.state["qualifying"]
        label = "Q6-predicated" if predicated else "Q6"
        details = {"selectivity": q / n if n else 0.0, "predicated": predicated}
        return QueryResult(label, merged.state["sum"].total(), n, work, details)

    def _q9_structures(self, db: Database) -> dict:
        def build():
            part = db.table("part")
            supplier = db.table("supplier")
            partsupp = db.table("partsupp")
            orders = db.table("orders")
            n_supp = supplier.n_rows
            green_keys = part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]
            ps_composite = partsupp["ps_partkey"] * (n_supp + 1) + partsupp["ps_suppkey"]
            return {
                "n_supp": n_supp,
                "green_keys": green_keys,
                "green_table": ChainedHashTable(green_keys),
                "ps_table": ChainedHashTable(ps_composite),
                "supp_table": ChainedHashTable(supplier["s_suppkey"]),
                "orders_table": ChainedHashTable(orders["o_orderkey"]),
            }

        return shared_structure(db, "q9-structs", build)

    def run_q9(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        partsupp = db.table("partsupp")
        supplier = db.table("supplier")
        orders = db.table("orders")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        lead = lo == 0
        structs = self._q9_structures(db)
        n_supp = structs["n_supp"]
        green_table = structs["green_table"]
        ps_table = structs["ps_table"]
        supp_table = structs["supp_table"]
        orders_table = structs["orders_table"]

        green_probe = green_table.probe(lineitem["l_partkey"][lo:hi])
        green = green_probe.found
        q = int(green.sum())

        li_composite = (
            lineitem["l_partkey"][lo:hi][green] * (n_supp + 1)
            + lineitem["l_suppkey"][lo:hi][green]
        )
        ps_probe = ps_table.probe(li_composite)
        supp_probe = supp_table.probe(lineitem["l_suppkey"][lo:hi][green])
        orders_probe = orders_table.probe(lineitem["l_orderkey"][lo:hi][green])

        keep = ps_probe.found & supp_probe.found & orders_probe.found
        supplycost = partsupp["ps_supplycost"][ps_probe.match_index[keep]]
        price = lineitem["l_extendedprice"][lo:hi][green][keep]
        disc = lineitem["l_discount"][lo:hi][green][keep]
        qty = lineitem["l_quantity"][lo:hi][green][keep]
        amount = price * (1.0 - disc) - supplycost * qty
        survivors = int(keep.sum())

        operators = OperatorWork(self)
        scan_work = operators.operator("scan lineitem")
        scan_work.record_sequential_read(
            bytes_for_rows(
                lineitem,
                ("l_partkey", "l_suppkey", "l_orderkey", "l_extendedprice",
                 "l_discount", "l_quantity"),
                lo,
                hi,
            )
        )
        scan_work.record_work(instructions=m * self.LOOP_INSTRS)
        build_work = operators.operator("hash builds")
        for table, key_bytes in (
            (green_table, structs["green_keys"].nbytes),
            (ps_table, partsupp.bytes_for(("ps_partkey", "ps_suppkey", "ps_supplycost"))),
            (supp_table, supplier.bytes_for(("s_suppkey", "s_nationkey"))),
            (orders_table, orders.bytes_for(("o_orderkey", "o_orderdate"))),
        ):
            self._record_build(build_work, table, key_bytes, lead=lead)
        self._record_probe(operators.operator("probe part (green)"), green_table, green_probe, m)
        self._record_probe(operators.operator("probe partsupp"), ps_table, ps_probe, q)
        self._record_probe(operators.operator("probe supplier"), supp_table, supp_probe, q)
        self._record_probe(operators.operator("probe orders"), orders_table, orders_probe, q)
        # Pipeline arithmetic on survivors + group aggregation.
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_work(
            instructions=survivors * (6 + self.HASH_INSTRS + 4),
            alu=survivors * 6,
            loads=survivors * 6,
            stores=survivors,
            hash_ops=survivors,
            chain=survivors,
        )
        work = operators.total()
        state = {
            "sum": ExactSum.of_array(amount),
            "green": q,
            "survivors": survivors,
        }
        if row_range is not None:
            return self._partial_result(
                "Q9", state, m, work, (lo, hi), operators.profiles
            )
        return self._finish_q9(db, MergedPartials(state, work, m, operators.profiles))

    def _finish_q9(self, db: Database, merged: MergedPartials) -> QueryResult:
        structs = self._q9_structures(db)
        n = merged.tuples
        work = self._finalize_profile(merged.work)
        operators = {
            name: self._finalize_profile(profile)
            for name, profile in merged.operators.items()
        }
        details = {
            "green_fraction": merged.state["green"] / n if n else 0.0,
            "survivors": merged.state["survivors"],
            "orders_ht_bytes": structs["orders_table"].working_set_bytes,
            "operators": operators,
        }
        return QueryResult("Q9", merged.state["sum"].total(), n, work, details)

    def _q18_group_table(self, db: Database) -> GroupByHashTable:
        return shared_structure(
            db,
            ("q18-groups", 0.4),
            lambda: GroupByHashTable(db.table("lineitem")["l_orderkey"]),
        )

    def run_q18(self, db: Database, row_range=None) -> QueryResult:
        lineitem = db.table("lineitem")
        lo, hi = resolve_range(row_range, lineitem.n_rows)
        m = hi - lo
        group_table = self._q18_group_table(db)

        # Partial per-group quantity sums: l_quantity is integer-valued,
        # so the bincount partials add exactly across morsels.
        qty_sums = np.bincount(
            group_table.group_ids[lo:hi],
            weights=lineitem["l_quantity"][lo:hi],
            minlength=group_table.n_groups,
        )

        work = self._new_work()
        work.record_sequential_read(
            bytes_for_rows(lineitem, ("l_orderkey", "l_quantity"), lo, hi)
        )
        self._record_groupby_updates(work, group_table, 0.0, lo, hi)
        state = {"qty_sums": qty_sums}
        if row_range is not None:
            return self._partial_result("Q18", state, m, work, (lo, hi))
        return self._finish_q18(db, MergedPartials(state, work, m))

    def _finish_q18(self, db: Database, merged: MergedPartials) -> QueryResult:
        orders = db.table("orders")
        customer = db.table("customer")
        group_table = self._q18_group_table(db)
        work = merged.work

        qty_sums = merged.state["qty_sums"]
        big = qty_sums > 300.0
        winner_orderkeys = group_table.distinct_keys[big]
        winners = len(winner_orderkeys)

        orders_table = shared_structure(
            db, "q18-orders", lambda: ChainedHashTable(orders["o_orderkey"])
        )
        winner_probe = orders_table.probe(winner_orderkeys)
        custkeys = orders["o_custkey"][winner_probe.match_index[winner_probe.found]]
        cust_table = shared_structure(
            db, "q18-cust", lambda: ChainedHashTable(customer["c_custkey"])
        )
        cust_probe = cust_table.probe(custkeys)
        value = {
            "winners": winners,
            "sum_winner_qty": float(qty_sums[big].sum()),
            "matched_customers": int(cust_probe.found.sum()),
        }

        # HAVING branch over all groups (rarely taken).
        work.record_branch_stream(
            "having sum(qty) > 300",
            group_table.n_groups,
            winners / group_table.n_groups if group_table.n_groups else 0.0,
        )
        self._record_build(work, orders_table, orders.bytes_for(("o_orderkey", "o_custkey")))
        self._record_probe(work, orders_table, winner_probe, winners)
        self._record_build(work, cust_table, customer.bytes_for(("c_custkey",)))
        self._record_probe(work, cust_table, cust_probe, len(custkeys))
        work = self._finalize_profile(work)
        details = {
            "groups": group_table.n_groups,
            "group_table_bytes": group_table.working_set_bytes,
            "chain_stats": group_table.chain_stats(),
        }
        return QueryResult("Q18", value, merged.tuples, work, details)
