"""Typer: the compiled, data-centric execution model (HyPer-style).

Typer compiles each query into fused per-tuple loops: operators are
inlined into a single pipeline, predicates of a conjunction are
evaluated together (so the dominant branch sees the *combined*
selectivity, Section 4), and no intermediate results are materialised.
The hot code of one query is a few kilobytes -- far below the L1I.

Execution here is numpy-vectorised for speed, but the recorded work is
that of the compiled per-tuple loop: per-tuple instruction counts,
operation mix, branch outcome streams (measured from the actual data)
and the exact bytes/accesses the fused pipeline touches.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import (
    Engine,
    JOIN_SPECS,
    OperatorWork,
    QueryResult,
    line_density,
    projection_columns,
    selection_predicate_masks,
    resolve_selection,
)
from repro.engines.hashtable import ChainedHashTable, GroupByHashTable
from repro.storage import Database
from repro.tpch import schema as sc


class TyperEngine(Engine):
    """Compiled query engine model."""

    name = "Typer"
    code_footprint_bytes = 24 * 1024
    supports_simd = False

    #: Amortised loop-control instructions per tuple (inc/cmp/branch,
    #: partially hidden by compiler unrolling).
    LOOP_INSTRS = 4.0
    #: Instructions per hash computation (multiply + shift + mask).
    HASH_INSTRS = 3.0
    #: Instructions per hash-table entry visit (load key + compare).
    VISIT_INSTRS = 2.0

    # ------------------------------------------------------------------
    # Projection (Section 3)
    # ------------------------------------------------------------------
    def run_projection(self, db: Database, degree: int, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        columns = projection_columns(degree)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows

        total = np.zeros(n)
        for column in columns:
            total = total + lineitem[column]
        value = float(total.sum())

        work = self._new_work()
        # Fused loop: degree loads, degree FP adds (including the
        # accumulator), amortised loop control.
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + 2.0 * degree),
            alu=n * degree,
            loads=n * degree,
            chain=n,  # serial accumulator update
        )
        work.record_sequential_read(lineitem.bytes_for(columns))
        return QueryResult(f"projection-p{degree}", value, n, work)

    # ------------------------------------------------------------------
    # Selection (Sections 4 and 7)
    # ------------------------------------------------------------------
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        self._check_simd(simd)
        selectivity, thresholds = resolve_selection(db, selectivity, thresholds)
        masks = selection_predicate_masks(db, thresholds)
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        proj_cols = projection_columns(4)

        combined = masks[0][1] & masks[1][1] & masks[2][1]
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)

        projected = np.zeros(q)
        for column in proj_cols:
            projected = projected + lineitem[column][qualifying]
        value = float(projected.sum())

        work = self._new_work()
        pred_bytes = lineitem.bytes_for(
            [name for name, _ in masks]
        )
        label = f"selection-{int(selectivity * 100)}%" + (
            "-predicated" if predicated else ""
        )
        if predicated:
            # Branch-free: all predicates and the whole projection are
            # computed for every tuple; the predicate mask becomes a
            # multiplicand (Section 7: pays off at 50/90%, not at 10%).
            work.record_work(
                instructions=n * (self.LOOP_INSTRS + 3 * 3 + 2 + 4 * 2 + 2),
                alu=n * (3 + 2 + 4 + 2),
                loads=n * (3 + 4),
                chain=n,
            )
            work.record_sequential_read(pred_bytes + lineitem.bytes_for(proj_cols))
        else:
            # Branched: predicates are evaluated together branch-free,
            # one branch on the combined outcome guards the projection.
            work.record_work(
                instructions=n * (self.LOOP_INSTRS + 3 * 2 + 2 + 1)
                + q * (4 * 2),
                alu=n * (3 + 2) + q * 4,
                loads=n * 3 + q * 4,
                chain=q,
            )
            work.record_sequential_read(pred_bytes)
            work.record_branch_outcomes("combined predicate", combined)
            density = line_density(qualifying, n)
            work.record_sparse_scan(
                "projection gather",
                density * lineitem.bytes_for(proj_cols),
                density,
            )
        details = {
            "selectivity": selectivity,
            "combined_selectivity": q / n if n else 0.0,
            "predicated": predicated,
        }
        return QueryResult(label, value, n, work, details)

    # ------------------------------------------------------------------
    # Join (Section 5)
    # ------------------------------------------------------------------
    def run_join(self, db: Database, size: str, simd: bool = False) -> QueryResult:
        self._check_simd(simd)
        if size not in JOIN_SPECS:
            raise ValueError(f"unknown join size {size!r}")
        spec = JOIN_SPECS[size]
        build = db.table(spec.build_table)
        probe = db.table(spec.probe_table)
        n_build = build.n_rows
        n_probe = probe.n_rows

        table = ChainedHashTable(build[spec.build_key])
        result = table.probe(probe[spec.probe_key])
        matched = result.found

        projected = np.zeros(int(matched.sum()))
        for column in spec.sum_columns:
            projected = projected + probe[column][matched]
        value = float(projected.sum())

        operators = OperatorWork(self)
        self._record_build(
            operators.operator("hash build"), table, build.bytes_for([spec.build_key])
        )
        probe_work = operators.operator("hash probe")
        self._record_probe(probe_work, table, result, n_probe)
        probe_work.record_work(
            instructions=n_probe * (self.LOOP_INSTRS + 1),
            loads=n_probe,
        )
        probe_work.record_sequential_read(probe.bytes_for([spec.probe_key]))
        # Aggregation over the matches: the summed columns.
        degree = len(spec.sum_columns)
        matches = int(matched.sum())
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_work(
            instructions=matches * 2 * degree,
            alu=matches * degree,
            loads=matches * degree,
            chain=matches,
        )
        aggregate_work.record_sequential_read(probe.bytes_for(spec.sum_columns))
        work = operators.total()
        details = {
            "join_size": size,
            "build_rows": n_build,
            "probe_rows": n_probe,
            "hit_fraction": result.hit_fraction,
            "chain_stats": table.chain_stats(),
            "hash_table_bytes": table.working_set_bytes,
            "operators": operators.profiles,
        }
        return QueryResult(f"join-{size}", value, n_probe, work, details)

    def _record_build(self, work, table: ChainedHashTable, key_bytes: float) -> None:
        """Hash-table build: hash each key, scatter-store the entry."""
        n = table.n_keys
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + self.HASH_INSTRS + 3),
            alu=n,
            loads=n,
            stores=n * 2,
            hash_ops=n,
        )
        work.record_sequential_read(key_bytes)
        work.record_random(
            "hash build scatter", n, table.working_set_bytes, dependent=False
        )

    def _record_probe(self, work, table: ChainedHashTable, result, n_probe: int) -> None:
        """Hash-table probe: hash, head load, chain walk, verify."""
        work.record_work(
            instructions=n_probe * (self.HASH_INSTRS + 1)
            + result.comparisons * self.VISIT_INSTRS,
            alu=n_probe,
            loads=n_probe + result.comparisons,
            hash_ops=n_probe,
        )
        work.record_random(
            "hash probe heads", n_probe, table.working_set_bytes, dependent=False
        )
        if result.extra_walk:
            work.record_random(
                "hash chain walk",
                result.extra_walk,
                table.working_set_bytes,
                dependent=True,
            )
        work.record_branch_outcomes("probe hit", result.found)
        if result.comparisons:
            walk_fraction = result.extra_walk / result.comparisons
            work.record_branch_stream(
                "chain continue", result.comparisons, walk_fraction
            )

    # ------------------------------------------------------------------
    # Group by (Section 6 discussion)
    # ------------------------------------------------------------------
    def run_groupby(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
        table = GroupByHashTable(composite)
        sums = table.aggregate_sum(lineitem["l_extendedprice"])
        value = float(sums.sum())

        work = self._new_work()
        self._record_groupby_updates(
            work, table, lineitem.bytes_for(["l_partkey", "l_returnflag", "l_extendedprice"])
        )
        details = {
            "groups": table.n_groups,
            "chain_stats": table.chain_stats(),
            "collision_fraction": table.collision_fraction(),
        }
        return QueryResult("groupby-micro", value, n, work, details)

    def _record_groupby_updates(self, work, table: GroupByHashTable, col_bytes: float) -> None:
        n = table.n_updates
        comparisons = table.update_comparisons()
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + self.HASH_INSTRS + 3)
            + comparisons * self.VISIT_INSTRS,
            alu=n * 2,
            loads=n * 2 + comparisons,
            stores=n,
            hash_ops=n,
            chain=n,
        )
        work.record_sequential_read(col_bytes)
        work.record_random(
            "group table update", n, table.working_set_bytes, dependent=False
        )
        extra = comparisons - n
        if extra > 0:
            work.record_random(
                "group chain walk", extra, table.working_set_bytes, dependent=True
            )
        work.record_branch_stream(
            "group collision", n, table.collision_fraction()
        )

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_q1(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        mask = lineitem["l_shipdate"] <= sc.DATE_1998_09_02
        q = int(mask.sum())

        flags = lineitem["l_returnflag"][mask]
        status = lineitem["l_linestatus"][mask]
        quantity = lineitem["l_quantity"][mask]
        price = lineitem["l_extendedprice"][mask]
        discount = lineitem["l_discount"][mask]
        tax = lineitem["l_tax"][mask]
        disc_price = price * (1.0 - discount)
        charge = disc_price * (1.0 + tax)
        group_key = flags * 2 + status
        table = GroupByHashTable(group_key, target_load=0.5)
        value = {
            "sum_qty": float(quantity.sum()),
            "sum_base_price": float(price.sum()),
            "sum_disc_price": float(disc_price.sum()),
            "sum_charge": float(charge.sum()),
            "groups": table.n_groups,
        }

        columns = (
            "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax",
        )
        work = self._new_work()
        # Fused scan+filter+aggregate: the eight aggregate updates and
        # the derived expressions dominate the per-tuple arithmetic.
        work.record_work(
            instructions=n * (self.LOOP_INSTRS + 2) + q * (6 + 4 + self.HASH_INSTRS + 8 * 3),
            alu=n + q * (4 + 2 + 8),
            loads=n + q * (6 + 8),
            stores=q * 8,
            hash_ops=q,
            chain=q * 3.0,  # partially serialised aggregate chains (4 groups)
        )
        work.record_sequential_read(lineitem.bytes_for(columns))
        work.record_branch_outcomes("shipdate filter", mask)
        # The 4-group aggregation table lives in L1: no random pattern.
        return QueryResult("Q1", value, n, work, {"groups": table.n_groups})

    def run_q6(self, db: Database, predicated: bool = False) -> QueryResult:
        lineitem = db.table("lineitem")
        n = lineitem.n_rows
        shipdate = lineitem["l_shipdate"]
        discount = lineitem["l_discount"]
        quantity = lineitem["l_quantity"]
        combined = (
            (shipdate >= sc.DATE_1994_01_01)
            & (shipdate < sc.DATE_1995_01_01)
            & (discount >= 0.05)
            & (discount <= 0.07)
            & (quantity < 24.0)
        )
        qualifying = np.flatnonzero(combined)
        q = len(qualifying)
        value = float(
            (lineitem["l_extendedprice"][qualifying] * discount[qualifying]).sum()
        )

        pred_cols = ("l_shipdate", "l_discount", "l_quantity")
        work = self._new_work()
        work.record_sequential_read(lineitem.bytes_for(pred_cols))
        if predicated:
            work.record_work(
                instructions=n * (self.LOOP_INSTRS + 5 + 4 + 3),
                alu=n * (5 + 4 + 2),
                loads=n * 4,
                chain=n,
            )
            work.record_sequential_read(lineitem.bytes_for(["l_extendedprice"]))
        else:
            # The compiled conjunction short-circuits per predicate
            # *column* group: each BETWEEN pair is evaluated branch-free
            # and guarded by one branch, so the predictor sees three
            # conditional streams (Figure 16 shows visible branch
            # stalls for Typer on Q6).
            date_pass = (shipdate >= sc.DATE_1994_01_01) & (shipdate < sc.DATE_1995_01_01)
            disc_pass = (discount >= 0.05) & (discount <= 0.07)
            qty_pass = quantity < 24.0
            alive = np.ones(n, dtype=bool)
            for name, mask in (
                ("shipdate range", date_pass),
                ("discount range", disc_pass),
                ("quantity bound", qty_pass),
            ):
                survivors = int(alive.sum())
                if survivors:
                    work.record_branch_outcomes(name, mask[alive])
                alive &= mask
            f1 = float(date_pass.mean())
            f2 = float((date_pass & disc_pass).mean())
            work.record_work(
                instructions=n * (self.LOOP_INSTRS + 3 + 1)
                + n * f1 * 3
                + n * f2 * 2
                + q * 4,
                alu=n * 3 + n * f1 * 2 + n * f2 + q * 2,
                loads=n + n * f1 + n * f2 + q,
                chain=q,
            )
            density = line_density(qualifying, n)
            work.record_sparse_scan(
                "price gather",
                density * lineitem.bytes_for(["l_extendedprice"]),
                density,
            )
        label = "Q6-predicated" if predicated else "Q6"
        details = {"selectivity": q / n if n else 0.0, "predicated": predicated}
        return QueryResult(label, value, n, work, details)

    def run_q9(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        part = db.table("part")
        supplier = db.table("supplier")
        partsupp = db.table("partsupp")
        orders = db.table("orders")
        n = lineitem.n_rows

        # Build side 1: green parts.
        green_keys = part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]
        green_table = ChainedHashTable(green_keys)
        green_probe = green_table.probe(lineitem["l_partkey"])
        green = green_probe.found
        q = int(green.sum())

        # Build side 2: partsupp on the composite key.
        n_supp = supplier.n_rows
        ps_composite = partsupp["ps_partkey"] * (n_supp + 1) + partsupp["ps_suppkey"]
        ps_table = ChainedHashTable(ps_composite)
        li_composite = (
            lineitem["l_partkey"][green] * (n_supp + 1) + lineitem["l_suppkey"][green]
        )
        ps_probe = ps_table.probe(li_composite)

        # Build side 3: suppliers (nationkey payload), 4: orders (date).
        supp_table = ChainedHashTable(supplier["s_suppkey"])
        supp_probe = supp_table.probe(lineitem["l_suppkey"][green])
        orders_table = ChainedHashTable(orders["o_orderkey"])
        orders_probe = orders_table.probe(lineitem["l_orderkey"][green])

        keep = ps_probe.found & supp_probe.found & orders_probe.found
        supplycost = partsupp["ps_supplycost"][ps_probe.match_index[keep]]
        nationkey = supplier["s_nationkey"][supp_probe.match_index[keep]]
        orderdate = orders["o_orderdate"][orders_probe.match_index[keep]]
        year = 1992 + orderdate // 365
        price = lineitem["l_extendedprice"][green][keep]
        disc = lineitem["l_discount"][green][keep]
        qty = lineitem["l_quantity"][green][keep]
        amount = price * (1.0 - disc) - supplycost * qty
        group_table = GroupByHashTable(nationkey * 10_000 + year, target_load=0.5)
        sums = group_table.aggregate_sum(amount)
        value = float(sums.sum())

        operators = OperatorWork(self)
        scan_work = operators.operator("scan lineitem")
        scan_work.record_sequential_read(
            lineitem.bytes_for(
                ("l_partkey", "l_suppkey", "l_orderkey", "l_extendedprice",
                 "l_discount", "l_quantity")
            )
        )
        scan_work.record_work(instructions=n * self.LOOP_INSTRS)
        build_work = operators.operator("hash builds")
        for table, key_bytes in (
            (green_table, green_keys.nbytes),
            (ps_table, partsupp.bytes_for(("ps_partkey", "ps_suppkey", "ps_supplycost"))),
            (supp_table, supplier.bytes_for(("s_suppkey", "s_nationkey"))),
            (orders_table, orders.bytes_for(("o_orderkey", "o_orderdate"))),
        ):
            self._record_build(build_work, table, key_bytes)
        self._record_probe(operators.operator("probe part (green)"), green_table, green_probe, n)
        self._record_probe(operators.operator("probe partsupp"), ps_table, ps_probe, q)
        self._record_probe(operators.operator("probe supplier"), supp_table, supp_probe, q)
        self._record_probe(operators.operator("probe orders"), orders_table, orders_probe, q)
        # Pipeline arithmetic on survivors + group aggregation.
        survivors = int(keep.sum())
        aggregate_work = operators.operator("aggregate")
        aggregate_work.record_work(
            instructions=survivors * (6 + self.HASH_INSTRS + 4),
            alu=survivors * 6,
            loads=survivors * 6,
            stores=survivors,
            hash_ops=survivors,
            chain=survivors,
        )
        work = operators.total()
        details = {
            "green_fraction": q / n if n else 0.0,
            "survivors": survivors,
            "orders_ht_bytes": orders_table.working_set_bytes,
            "operators": operators.profiles,
        }
        return QueryResult("Q9", value, n, work, details)

    def run_q18(self, db: Database) -> QueryResult:
        lineitem = db.table("lineitem")
        orders = db.table("orders")
        customer = db.table("customer")
        n = lineitem.n_rows

        group_table = GroupByHashTable(lineitem["l_orderkey"])
        qty_sums = group_table.aggregate_sum(lineitem["l_quantity"])
        big = qty_sums > 300.0
        winner_orderkeys = group_table.distinct_keys[big]
        winners = len(winner_orderkeys)

        orders_table = ChainedHashTable(orders["o_orderkey"])
        winner_probe = orders_table.probe(winner_orderkeys)
        custkeys = orders["o_custkey"][winner_probe.match_index[winner_probe.found]]
        cust_table = ChainedHashTable(customer["c_custkey"])
        cust_probe = cust_table.probe(custkeys)
        value = {
            "winners": winners,
            "sum_winner_qty": float(qty_sums[big].sum()),
            "matched_customers": int(cust_probe.found.sum()),
        }

        work = self._new_work()
        work.record_sequential_read(
            lineitem.bytes_for(("l_orderkey", "l_quantity"))
        )
        self._record_groupby_updates(work, group_table, 0.0)
        # HAVING branch over all groups (rarely taken).
        work.record_branch_stream(
            "having sum(qty) > 300",
            group_table.n_groups,
            winners / group_table.n_groups if group_table.n_groups else 0.0,
        )
        self._record_build(work, orders_table, orders.bytes_for(("o_orderkey", "o_custkey")))
        self._record_probe(work, orders_table, winner_probe, winners)
        self._record_build(work, cust_table, customer.bytes_for(("c_custkey",)))
        self._record_probe(work, cust_table, cust_probe, len(custkeys))
        details = {
            "groups": group_table.n_groups,
            "group_table_bytes": group_table.working_set_bytes,
            "chain_stats": group_table.chain_stats(),
        }
        return QueryResult("Q18", value, n, work, details)
