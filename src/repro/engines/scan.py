"""Scan kernels over possibly-encoded columns.

Engines funnel their predicate evaluations through
:func:`predicate_mask`: when the column carries an encoding
(:mod:`repro.storage.encoding`) the comparison runs *in the code
domain* -- 1-2 byte unsigned codes instead of 8-byte values, with the
threshold rebased once per call -- and falls back to the raw numpy
comparison otherwise.  The codecs preserve value order exactly, so the
returned mask is bit-identical either way; all work-profile recording
(which is a function of the mask and the logical byte widths) is
untouched by the routing.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning import scan_outcome
from repro.storage.column import ColumnTable
from repro.storage.encoding import compare_values


def predicate_mask(
    table: ColumnTable, column: str, op: str, threshold, lo: int, hi: int
) -> np.ndarray:
    """Evaluate ``column <op> threshold`` over rows ``[lo, hi)``.

    Runs on the encoded codes when the column has an encoding, on the
    decoded values otherwise; the result is identical by construction.
    Inside a pruned block (:mod:`repro.core.pruning`) the outcome is a
    zone-map theorem and the constant mask is produced without touching
    the data -- equal, bit for bit, to what the scan would return.
    """
    outcome = scan_outcome(column, op, threshold, lo, hi)
    if outcome is not None:
        return np.full(hi - lo, outcome, dtype=bool)
    encoded = table.encoding(column)
    if encoded is not None:
        return encoded.compare(op, threshold, lo, hi)
    return compare_values(table[column][lo:hi], op, threshold)


def between_mask(
    table: ColumnTable, column: str, low, high, lo: int, hi: int,
    low_op: str = "ge", high_op: str = "le",
) -> np.ndarray:
    """``low <op> column <op> high`` over rows ``[lo, hi)``."""
    return predicate_mask(table, column, low_op, low, lo, hi) & predicate_mask(
        table, column, high_op, high, lo, hi
    )


def combined_key(
    table: ColumnTable,
    major: str,
    minor: str,
    multiplier: int,
    lo: int,
    hi: int,
    take=None,
) -> np.ndarray:
    """``major * multiplier + minor`` as int64 group keys.

    When both columns are encoded with tiny domains the keys come
    straight from the codes through the dictionary-sized decode tables
    -- the decoded key columns are never materialised.  ``take``
    optionally restricts rows (mask or indices).
    """
    major_enc = table.encoding(major)
    minor_enc = table.encoding(minor)
    if major_enc is not None and minor_enc is not None:
        major_domain = major_enc.small_domain()
        minor_domain = minor_enc.small_domain()
        if major_domain is not None and minor_domain is not None:
            major_codes = major_enc.codes_range(lo, hi)
            minor_codes = minor_enc.codes_range(lo, hi)
            if take is not None:
                major_codes = major_codes[take]
                minor_codes = minor_codes[take]
            return (
                major_domain.astype(np.int64)[major_codes] * multiplier
                + minor_domain.astype(np.int64)[minor_codes]
            )
    major_values = table[major][lo:hi]
    minor_values = table[minor][lo:hi]
    if take is not None:
        major_values = major_values[take]
        minor_values = minor_values[take]
    return major_values * multiplier + minor_values
