"""Scan and aggregation kernels over possibly-encoded columns.

Engines funnel their predicate evaluations through
:func:`predicate_mask`: when the column carries an encoding
(:mod:`repro.storage.encoding`) the comparison runs *in the code
domain* -- 1-2 byte unsigned codes instead of 8-byte values, with the
threshold rebased once per call -- and falls back to the raw numpy
comparison otherwise.  The codecs preserve value order exactly, so the
returned mask is bit-identical either way; all work-profile recording
(which is a function of the mask and the logical byte widths) is
untouched by the routing.

The same contract extends to **aggregation** (the MorphStore
direction): :func:`exact_sum_column` and :func:`grouped_exact_sum`
sum *codes* instead of decoded values -- per-code occurrence counts
(dict / narrow FoR), run views (RLE), or the FoR integer identity --
and rebase once per group cell into :class:`ExactSum` units that are
bit-identical to summing the decoded column.  Each call records a
**morph decision** (code-domain vs decode-then-sum, per column and
operator); engines carry it in ``state["const_encoded_agg"]`` and the
finishers surface it as ``details["encoded_agg"]`` plus an
``encoded_agg`` span.
"""

from __future__ import annotations

import numpy as np

from repro.core.exactsum import ExactSum
from repro.core.pruning import scan_outcome
from repro.obs import trace
from repro.storage.column import ColumnTable
from repro.storage.encoding import (
    compare_values,
    encoded_agg_enabled,
    selection_mask,
)

#: Merge-state key engines use to carry the morph decision to their
#: finishers (``const_``: every morsel computes the identical tuple).
AGG_STATE_KEY = "const_encoded_agg"

#: Bound on the combined (group cell x measure code) bincount domain of
#: :func:`grouped_exact_sum`; larger products decode instead.
GROUPED_DOMAIN_CAP = 1 << 20

#: Rows per batch of the decode-then-sum fallback over MIXED chunks.
UNPACK_BATCH_ROWS = 1 << 16


def predicate_mask(
    table: ColumnTable, column: str, op: str, threshold, lo: int, hi: int
) -> np.ndarray:
    """Evaluate ``column <op> threshold`` over rows ``[lo, hi)``.

    Runs on the encoded codes when the column has an encoding, on the
    decoded values otherwise; the result is identical by construction.
    Inside a pruned block (:mod:`repro.core.pruning`) the outcome is a
    zone-map theorem and the constant mask is produced without touching
    the data -- equal, bit for bit, to what the scan would return.
    """
    outcome = scan_outcome(column, op, threshold, lo, hi)
    if outcome is not None:
        return np.full(hi - lo, outcome, dtype=bool)
    encoded = table.encoding(column)
    if encoded is not None:
        return encoded.compare(op, threshold, lo, hi)
    return compare_values(table[column][lo:hi], op, threshold)


def between_mask(
    table: ColumnTable, column: str, low, high, lo: int, hi: int,
    low_op: str = "ge", high_op: str = "le",
) -> np.ndarray:
    """``low <op> column <op> high`` over rows ``[lo, hi)``."""
    return predicate_mask(table, column, low_op, low, lo, hi) & predicate_mask(
        table, column, high_op, high, lo, hi
    )


def combined_key(
    table: ColumnTable,
    major: str,
    minor: str,
    multiplier: int,
    lo: int,
    hi: int,
    take=None,
) -> np.ndarray:
    """``major * multiplier + minor`` as int64 group keys.

    When both columns are encoded with tiny domains the keys come
    straight from the codes through the dictionary-sized decode tables
    -- the decoded key columns are never materialised.  ``take``
    optionally restricts rows (mask or indices).
    """
    major_enc = table.encoding(major)
    minor_enc = table.encoding(minor)
    if major_enc is not None and minor_enc is not None:
        major_domain = major_enc.small_domain()
        minor_domain = minor_enc.small_domain()
        if major_domain is not None and minor_domain is not None:
            major_codes = major_enc.codes_range(lo, hi)
            minor_codes = minor_enc.codes_range(lo, hi)
            if take is not None:
                major_codes = major_codes[take]
                minor_codes = minor_codes[take]
            return (
                major_domain.astype(np.int64)[major_codes] * multiplier
                + minor_domain.astype(np.int64)[minor_codes]
            )
    major_values = table[major][lo:hi]
    minor_values = table[minor][lo:hi]
    if take is not None:
        major_values = major_values[take]
        minor_values = minor_values[take]
    return major_values * multiplier + minor_values


# ----------------------------------------------------------------------
# Code-domain aggregation (sum codes, not values)
# ----------------------------------------------------------------------
def batched_decode_sum(
    encoded, dtype, lo: int, hi: int, selected=None,
    batch_rows: int = UNPACK_BATCH_ROWS,
) -> ExactSum:
    """Decode-then-sum fallback for MIXED chunks: unpack the encoded
    column in bounded batches and accumulate each batch exactly.

    Used when a chunk has no exact code-domain path (wide FoR domains
    beyond the float64-exactness guard, unsupported codec shapes): the
    full decoded column is never materialised, and ExactSum's
    associativity makes the batched accumulation bit-identical to a
    single ``of_array`` over the whole range.
    """
    mask = selection_mask(selected, hi - lo)
    total = ExactSum()
    for start in range(lo, hi, batch_rows):
        end = min(start + batch_rows, hi)
        values = encoded.decode_range(start, end).astype(dtype, copy=False)
        if mask is not None:
            values = values[mask[start - lo : end - lo]]
        total.add_array(values)
    return total


def exact_sum_column(
    table: ColumnTable, column: str, lo: int, hi: int, selected=None
) -> tuple[ExactSum, str, str]:
    """``sum(column[lo:hi][selected])`` as an exact sum, plus the morph
    decision ``(mode, why)`` that produced it.

    The cost rule: an encoded column with an exact code-domain shape
    (per-code counts, RLE run view, or the FoR integer identity) sums
    codes; everything else decodes and sums values.  Both paths produce
    bit-identical :class:`ExactSum` units -- the decision changes the
    execution strategy, never the result.
    """
    encoded = table.encoding(column) if hasattr(table, "encoding") else None
    if encoded is None:
        values = table[column][lo:hi]
        if selected is not None:
            values = values[selected]
        return ExactSum.of_array(values), "decoded", "column-raw"
    if not encoded_agg_enabled():
        values = table[column][lo:hi]
        if selected is not None:
            values = values[selected]
        return ExactSum.of_array(values), "decoded", "toggle-off"
    result = encoded.exact_sum(lo, hi, selected)
    if result is not None:
        return result, "code-domain", encoded.codec_kind
    return (
        batched_decode_sum(encoded, encoded.dtype, lo, hi, selected),
        "decoded",
        "batched-unpack",
    )


def grouped_exact_sum(
    table: ColumnTable,
    major: str,
    minor: str,
    multiplier: int,
    measure: str,
    lo: int,
    hi: int,
    selected=None,
):
    """Grouped exact sum in the code domain, or None when ineligible.

    One ``bincount`` over the combined (major x minor x measure-code)
    domain yields per-group-cell measure-code counts; each occupied
    cell is rebased **once** into ExactSum units and the cells merge
    exactly, so the global sum and the set of observed group keys are
    both bit-identical to the decoded path (``ExactSum.of_array`` over
    the selected measure values + ``np.unique`` over the combined key).

    Returns ``(total, keys)``: the exact sum over all groups and the
    set of ``major * multiplier + minor`` key values that occur in the
    selection.
    """
    if not encoded_agg_enabled():
        return None
    major_enc = table.encoding(major)
    minor_enc = table.encoding(minor)
    measure_enc = table.encoding(measure)
    if major_enc is None or minor_enc is None or measure_enc is None:
        return None
    major_domain = major_enc.small_domain()
    minor_domain = minor_enc.small_domain()
    measure_domain = measure_enc.agg_domain()
    if major_domain is None or minor_domain is None or measure_domain is None:
        return None
    n_major, n_minor = len(major_domain), len(minor_domain)
    n_measure = len(measure_domain)
    if n_major * n_minor * n_measure > GROUPED_DOMAIN_CAP:
        return None
    major_codes = major_enc.codes_range(lo, hi)
    minor_codes = minor_enc.codes_range(lo, hi)
    measure_codes = measure_enc.codes_range(lo, hi)
    if selected is not None:
        major_codes = major_codes[selected]
        minor_codes = minor_codes[selected]
        measure_codes = measure_codes[selected]
    combined = (
        major_codes.astype(np.int64) * (n_minor * n_measure)
        + minor_codes.astype(np.int64) * n_measure
        + measure_codes
    )
    counts = np.bincount(
        combined, minlength=n_major * n_minor * n_measure
    ).reshape(n_major * n_minor, n_measure)
    occupied = np.flatnonzero(counts.sum(axis=1))
    measure_values = np.asarray(measure_domain).astype(
        table.column(measure).dtype, copy=False
    )
    total = ExactSum()
    for cell in occupied.tolist():
        total += ExactSum.of_counts(measure_values, counts[cell])
    # Key values exactly as the decoded path computes them: decoded
    # dtypes, then ``major * multiplier + minor`` under numpy promotion.
    major_values = np.asarray(major_domain).astype(
        table.column(major).dtype, copy=False
    )
    minor_values = np.asarray(minor_domain).astype(
        table.column(minor).dtype, copy=False
    )
    keys = (
        major_values[occupied // n_minor] * multiplier
        + minor_values[occupied % n_minor]
    )
    return total, set(keys.tolist())


def q1_encoded_aggregation(lineitem, lo: int, hi: int, selected):
    """Q1's morph decision and (when eligible) its code-domain payload.

    Q1 sums four measures.  Only ``sum(l_quantity)`` is a direct column
    sum over an encoded column, so it -- together with the group-key
    set, which falls out of the same combined bincount -- is the
    code-domain candidate; ``l_extendedprice`` is stored raw, and
    ``disc_price`` / ``charge`` round *per row* inside their derived
    expressions, which no code rebase can reproduce.

    Returns ``(payload, decision)`` where payload is
    ``(sum_qty, keys)`` or None and decision is the per-measure morph
    record for ``details["encoded_agg"]``.
    """
    grouped = grouped_exact_sum(
        lineitem, "l_returnflag", "l_linestatus", 2, "l_quantity",
        lo, hi, selected,
    )
    if grouped is not None:
        qty_mode, qty_why = "code-domain", "grouped-bincount"
    elif not encoded_agg_enabled():
        qty_mode, qty_why = "decoded", "toggle-off"
    elif lineitem.encoding("l_quantity") is None:
        qty_mode, qty_why = "decoded", "column-raw"
    else:
        qty_mode, qty_why = "decoded", "domain-too-large"
    decision = (
        ("sum_qty", "l_quantity", qty_mode, qty_why),
        ("group_keys", "l_returnflag*l_linestatus", qty_mode, qty_why),
        ("sum_base_price", "l_extendedprice", "decoded", "column-raw"),
        ("sum_disc_price", None, "decoded", "derived-expression"),
        ("sum_charge", None, "decoded", "derived-expression"),
    )
    return grouped, decision


def decision_details(decision) -> dict | None:
    """``details["encoded_agg"]`` from a morph-decision tuple."""
    if not decision:
        return None
    measures = [
        {"slot": slot, "column": column, "mode": mode, "why": why}
        for slot, column, mode, why in decision
    ]
    return {
        "measures": measures,
        "code_domain": sum(1 for m in measures if m["mode"] == "code-domain"),
        "decoded": sum(1 for m in measures if m["mode"] == "decoded"),
    }


def record_encoded_agg(decision) -> None:
    """Emit the ``encoded_agg`` span for a morph decision that put at
    least one aggregate in the code domain (all-decoded decisions stay
    silent so trace shapes without encoded aggregation are unchanged).
    """
    code_domain = [
        slot for slot, _, mode, _ in decision if mode == "code-domain"
    ]
    if not code_domain:
        return
    with trace.span(
        "encoded_agg",
        code_domain=len(code_domain),
        decoded=len(decision) - len(code_domain),
        slots=",".join(code_domain),
    ):
        pass
