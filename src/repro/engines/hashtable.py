"""Chained hash table for joins and group-bys, with chain statistics.

All profiled systems use hash joins for the join micro-benchmark
(Section 2) and hash aggregation for group-bys.  This implementation
builds a real bucket-chained table (head array + next links, Fibonacci
hashing into a power-of-two bucket array) so that the chain-length
statistics the paper reports in Section 6 (join chains 0-1, mean 0.44;
group-by chains 0-7, mean 0.23, more irregular) are *measured*, not
assumed, and probe work (key comparisons, chain-walk lengths) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: 64-bit Fibonacci (golden-ratio) multiplicative hashing constant.
FIBONACCI_64 = np.uint64(0x9E3779B97F4A7C15)

#: Bytes per hash-table entry: key (8) + payload slot (8) + next (8).
ENTRY_BYTES = 24
#: Bytes per bucket head pointer.
HEAD_BYTES = 8


def next_power_of_two(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def fibonacci_bucket(keys: np.ndarray, n_buckets: int) -> np.ndarray:
    """Vectorised Fibonacci hashing of int keys into ``n_buckets``
    (a power of two): the top log2(n_buckets) bits of key * phi64."""
    if n_buckets & (n_buckets - 1):
        raise ValueError("n_buckets must be a power of two")
    shift = np.uint64(64 - int(n_buckets).bit_length() + 1)
    hashed = keys.astype(np.uint64) * FIBONACCI_64
    return (hashed >> shift).astype(np.int64)


def weak_composite_bucket(keys: np.ndarray, n_buckets: int) -> np.ndarray:
    """The weaker hash group-by operators effectively apply to
    composite grouping keys: hash each component and combine with
    XOR-shift.  Correlated components collide far more often than
    evenly distributed primary/foreign keys, producing the irregular
    chains the paper measures for group-by tables."""
    if n_buckets & (n_buckets - 1):
        raise ValueError("n_buckets must be a power of two")
    hashed = keys.astype(np.uint64) * FIBONACCI_64
    folded = hashed ^ (hashed >> np.uint64(32))
    return (folded & np.uint64(n_buckets - 1)).astype(np.int64)


@dataclass(frozen=True)
class ChainStats:
    """Distribution of bucket chain lengths (over *all* buckets)."""

    mean: float
    std: float
    max: int
    n_buckets: int
    n_keys: int

    @property
    def load_factor(self) -> float:
        return self.n_keys / self.n_buckets if self.n_buckets else 0.0


@dataclass(frozen=True)
class ProbeResult:
    """Outcome and cost of a batch probe."""

    found: np.ndarray  # bool per probe key
    match_index: np.ndarray  # index into the build rows (-1 if missing)
    comparisons: int  # total key comparisons walked
    extra_walk: int  # comparisons beyond the first (dependent chain loads)

    @property
    def hit_fraction(self) -> float:
        return float(self.found.mean()) if len(self.found) else 0.0


class ChainedHashTable:
    """Bucket-chained hash table over unique build keys.

    Values are inserted at the head of their chain (the classic
    insert-at-head layout), so a key's probe depth equals the number of
    same-bucket keys inserted after it.
    """

    def __init__(
        self,
        keys: np.ndarray,
        target_load: float = 0.5,
        hash_fn=fibonacci_bucket,
    ):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("build keys must be one-dimensional")
        if len(np.unique(keys)) != len(keys):
            raise ValueError("build keys must be unique (join build side)")
        if not 0.0 < target_load <= 1.0:
            raise ValueError("target_load must be in (0, 1]")
        self.keys = keys
        self.n_keys = len(keys)
        self.n_buckets = next_power_of_two(max(1, int(np.ceil(self.n_keys / target_load))))
        self._hash_fn = hash_fn
        self.buckets = hash_fn(keys, self.n_buckets) if self.n_keys else np.empty(0, np.int64)
        self.bucket_counts = np.bincount(self.buckets, minlength=self.n_buckets)

        # Chain layout: head/next arrays (the real structure), plus the
        # per-key probe depth used for exact comparison accounting.
        self.head = np.full(self.n_buckets, -1, dtype=np.int64)
        self.next = np.full(self.n_keys, -1, dtype=np.int64)
        self._build_chains()
        self._depth = self._compute_depths()

        # Sorted-key index for vectorised exact probes.
        self._key_order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[self._key_order]

    def _build_chains(self) -> None:
        """Vectorised head/next construction equivalent to inserting
        keys 0..n-1 at the head of their bucket chains in order."""
        if not self.n_keys:
            return
        # Group indices by bucket, preserving insertion order within
        # each bucket (stable sort): the head is the last-inserted key
        # and next links run backwards through the insertion order.
        order = np.argsort(self.buckets, kind="stable")
        sorted_buckets = self.buckets[order]
        same_as_prev = np.concatenate(([False], sorted_buckets[1:] == sorted_buckets[:-1]))
        self.next[order[same_as_prev]] = order[np.flatnonzero(same_as_prev) - 1]
        last_of_group = np.concatenate((sorted_buckets[1:] != sorted_buckets[:-1], [True]))
        self.head[sorted_buckets[last_of_group]] = order[last_of_group]

    def _compute_depths(self) -> np.ndarray:
        """Probe depth of each build key: 1 + number of same-bucket keys
        inserted after it."""
        if not self.n_keys:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((-np.arange(self.n_keys), self.buckets))
        sorted_buckets = self.buckets[order]
        first_of_group = np.concatenate(([True], np.diff(sorted_buckets) != 0))
        group_start = np.maximum.accumulate(
            np.where(first_of_group, np.arange(self.n_keys), 0)
        )
        depth_sorted = np.arange(self.n_keys) - group_start + 1
        depth = np.empty(self.n_keys, dtype=np.int64)
        depth[order] = depth_sorted
        return depth

    # ------------------------------------------------------------------
    @property
    def working_set_bytes(self) -> int:
        """Bytes a probe touches at random: bucket heads + entries."""
        return self.n_buckets * HEAD_BYTES + self.n_keys * ENTRY_BYTES

    def chain_stats(self) -> ChainStats:
        counts = self.bucket_counts
        return ChainStats(
            mean=float(counts.mean()) if len(counts) else 0.0,
            std=float(counts.std()) if len(counts) else 0.0,
            max=int(counts.max()) if len(counts) else 0,
            n_buckets=self.n_buckets,
            n_keys=self.n_keys,
        )

    def chain_of(self, key: int) -> list[int]:
        """Walk one chain the way the hardware would (test helper)."""
        bucket = int(self._hash_fn(np.asarray([key]), self.n_buckets)[0])
        chain = []
        cursor = int(self.head[bucket])
        while cursor != -1:
            chain.append(cursor)
            cursor = int(self.next[cursor])
        return chain

    def probe(self, probe_keys: np.ndarray) -> ProbeResult:
        """Batch probe; exact comparison counts from chain depths."""
        probe_keys = np.asarray(probe_keys)
        if not self.n_keys:
            return ProbeResult(
                found=np.zeros(len(probe_keys), dtype=bool),
                match_index=np.full(len(probe_keys), -1, dtype=np.int64),
                comparisons=0,
                extra_walk=0,
            )
        positions = np.searchsorted(self._sorted_keys, probe_keys)
        positions = np.clip(positions, 0, self.n_keys - 1)
        candidates = self._key_order[positions]
        found = self.keys[candidates] == probe_keys
        match_index = np.where(found, candidates, -1)

        # Hits walk to the key's depth; misses walk the whole chain of
        # the probed bucket.
        hit_comparisons = int(self._depth[candidates[found]].sum())
        miss_buckets = self._hash_fn(probe_keys[~found], self.n_buckets)
        miss_comparisons = int(self.bucket_counts[miss_buckets].sum())
        comparisons = hit_comparisons + miss_comparisons
        walks = comparisons - int(found.sum())  # beyond-first-entry walks
        return ProbeResult(
            found=found,
            match_index=match_index,
            comparisons=comparisons,
            extra_walk=max(0, walks),
        )


class GroupByHashTable:
    """Hash aggregation table over (possibly composite) group keys.

    Groups are identified exactly (``np.unique``); the bucket structure
    over the *distinct* keys provides chain statistics and per-update
    probe costs, using the weaker composite hash that makes group-by
    chains irregular (Section 6).
    """

    def __init__(
        self,
        group_keys: np.ndarray,
        target_load: float = 0.4,
        hash_fn=weak_composite_bucket,
    ):
        group_keys = np.asarray(group_keys)
        self.distinct_keys, self.group_ids = np.unique(group_keys, return_inverse=True)
        self.n_groups = len(self.distinct_keys)
        self.n_updates = len(group_keys)
        self.n_buckets = next_power_of_two(
            max(1, int(np.ceil(self.n_groups / target_load)))
        )
        self.buckets = hash_fn(self.distinct_keys, self.n_buckets)
        self.bucket_counts = np.bincount(self.buckets, minlength=self.n_buckets)
        # Depth of each distinct key in its chain (insert-at-head order
        # of first appearance).
        order = np.lexsort((-np.arange(self.n_groups), self.buckets))
        sorted_buckets = self.buckets[order]
        first = np.concatenate(([True], np.diff(sorted_buckets) != 0))
        start = np.maximum.accumulate(np.where(first, np.arange(self.n_groups), 0))
        depth_sorted = np.arange(self.n_groups) - start + 1
        self._depth = np.empty(self.n_groups, dtype=np.int64)
        self._depth[order] = depth_sorted

    @property
    def working_set_bytes(self) -> int:
        return self.n_buckets * HEAD_BYTES + self.n_groups * ENTRY_BYTES

    def chain_stats(self) -> ChainStats:
        counts = self.bucket_counts
        return ChainStats(
            mean=float(counts.mean()) if len(counts) else 0.0,
            std=float(counts.std()) if len(counts) else 0.0,
            max=int(counts.max()) if len(counts) else 0,
            n_buckets=self.n_buckets,
            n_keys=self.n_groups,
        )

    def update_comparisons(self) -> int:
        """Total key comparisons over all aggregation updates: each
        update walks to its group's chain depth."""
        return int(self._depth[self.group_ids].sum())

    def collision_fraction(self) -> float:
        """Fraction of updates that walk past the first chain entry
        (the hash-collision branches of Section 6)."""
        if not self.n_updates:
            return 0.0
        return float((self._depth[self.group_ids] > 1).mean())

    def aggregate_sum(self, values: np.ndarray) -> np.ndarray:
        """SUM(values) per group, aligned with ``distinct_keys``."""
        return np.bincount(self.group_ids, weights=values, minlength=self.n_groups)

    def aggregate_count(self) -> np.ndarray:
        return np.bincount(self.group_ids, minlength=self.n_groups)
