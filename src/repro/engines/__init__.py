"""The four profiled OLAP systems and their shared substrates."""

from repro.engines.base import (
    Engine,
    JOIN_SIZES,
    JOIN_SPECS,
    JoinSpec,
    QueryResult,
    SELECTION_SELECTIVITIES,
    line_density,
    projection_columns,
    resolve_selection,
    selection_predicate_masks,
    selection_thresholds,
)
from repro.engines.hashtable import (
    ChainedHashTable,
    ChainStats,
    GroupByHashTable,
    ProbeResult,
    fibonacci_bucket,
    next_power_of_two,
    weak_composite_bucket,
)
from repro.engines.typer import TyperEngine
from repro.engines.tectorwise import TectorwiseEngine
from repro.engines.interpreter import (
    ColumnStoreEngine,
    InterpreterEngine,
    RowStoreEngine,
)

#: All four engines in the paper's presentation order.
ALL_ENGINES = (RowStoreEngine, ColumnStoreEngine, TyperEngine, TectorwiseEngine)
#: The two high-performance OLAP engines (Sections 3-10 focus).
HPE_ENGINES = (TyperEngine, TectorwiseEngine)


def engine_by_name(name: str) -> Engine:
    """Instantiate an engine from its display name."""
    for engine_cls in ALL_ENGINES:
        if engine_cls.name == name:
            return engine_cls()
    raise ValueError(
        f"unknown engine {name!r}; expected one of "
        f"{[cls.name for cls in ALL_ENGINES]}"
    )


__all__ = [
    "ALL_ENGINES",
    "ChainStats",
    "ChainedHashTable",
    "ColumnStoreEngine",
    "Engine",
    "GroupByHashTable",
    "HPE_ENGINES",
    "InterpreterEngine",
    "JOIN_SIZES",
    "JOIN_SPECS",
    "JoinSpec",
    "ProbeResult",
    "QueryResult",
    "RowStoreEngine",
    "SELECTION_SELECTIVITIES",
    "TectorwiseEngine",
    "TyperEngine",
    "engine_by_name",
    "fibonacci_bucket",
    "line_density",
    "next_power_of_two",
    "projection_columns",
    "resolve_selection",
    "selection_predicate_masks",
    "selection_thresholds",
    "weak_composite_bucket",
]
