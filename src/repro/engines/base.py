"""Engine interface and shared micro-benchmark definitions.

The four profiled systems implement this interface.  Each ``run_*``
method *executes the query for real* on numpy data (results are
cross-checked across engines in the tests) while recording the work it
performs into a :class:`~repro.core.workprofile.WorkProfile`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.workprofile import WorkProfile
from repro.storage import Database
from repro.tpch.schema import PROJECTION_COLUMNS, SELECTION_PREDICATE_COLUMNS

#: Join micro-benchmark sizes, in paper order (Section 2).
JOIN_SIZES = ("small", "medium", "large")

#: Selectivities the selection micro-benchmark sweeps (per predicate).
SELECTION_SELECTIVITIES = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class JoinSpec:
    """One join micro-benchmark: build side, probe side and the summed
    expression over the probe table (Section 2)."""

    size: str
    build_table: str
    build_key: str
    probe_table: str
    probe_key: str
    sum_columns: tuple[str, ...]


JOIN_SPECS = {
    "small": JoinSpec(
        "small", "nation", "n_nationkey", "supplier", "s_nationkey",
        ("s_acctbal", "s_suppkey"),
    ),
    "medium": JoinSpec(
        "medium", "supplier", "s_suppkey", "partsupp", "ps_suppkey",
        ("ps_availqty", "ps_supplycost"),
    ),
    "large": JoinSpec(
        "large", "orders", "o_orderkey", "lineitem", "l_orderkey",
        PROJECTION_COLUMNS,
    ),
}


@dataclass
class QueryResult:
    """What one engine execution produced and what it cost."""

    workload: str
    value: object
    tuples: int
    work: WorkProfile
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.work.label = self.workload
        self.work.tuples = self.tuples

    @property
    def operator_work(self) -> dict[str, WorkProfile]:
        """Per-operator work profiles, when the engine recorded them
        (Section 6: query behaviour decomposes into operator behaviour)."""
        return self.details.get("operators", {})


class OperatorWork:
    """Accumulates per-operator work profiles during one execution.

    Engines that want operator-level attribution record each pipeline
    stage into its own profile; :meth:`total` merges them into the
    query-level profile the profiler consumes.
    """

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self.profiles: dict[str, WorkProfile] = {}

    def operator(self, name: str) -> WorkProfile:
        """The (new or existing) profile for one named operator."""
        if name not in self.profiles:
            profile = self._engine._new_work()
            profile.label = name
            self.profiles[name] = profile
        return self.profiles[name]

    def total(self) -> WorkProfile:
        """All operators merged into one query-level profile."""
        merged = self._engine._new_work()
        for profile in self.profiles.values():
            merged.merge(profile)
        return merged


def projection_columns(degree: int) -> tuple[str, ...]:
    """The lineitem columns a projection query of ``degree`` sums."""
    if not 1 <= degree <= len(PROJECTION_COLUMNS):
        raise ValueError(
            f"projection degree must be in [1, {len(PROJECTION_COLUMNS)}]"
        )
    return PROJECTION_COLUMNS[:degree]


def selection_thresholds(db: Database, selectivity: float) -> dict[str, float]:
    """Per-predicate thresholds giving each predicate the requested
    individual selectivity on the actual data (the micro-benchmark
    varies the selectivity of each individual predicate)."""
    if not 0.0 < selectivity < 1.0:
        raise ValueError("selectivity must be in (0, 1)")
    lineitem = db.table("lineitem")
    return {
        column: float(np.quantile(lineitem[column], selectivity))
        for column in SELECTION_PREDICATE_COLUMNS
    }


def resolve_selection(
    db: Database,
    selectivity: float | None,
    thresholds=None,
) -> tuple[float, dict[str, float]]:
    """Resolve the selection micro-benchmark's parameters.

    The hand-wired drivers pass a ``selectivity`` and derive per-column
    thresholds from the data; the SQL path parses literal thresholds
    and passes them through unchanged (so a round-trip is exact) with
    ``selectivity=None``, in which case the nominal per-predicate
    selectivity is measured from the data for labelling.  ``thresholds``
    may be a dict keyed by predicate column or a tuple in
    :data:`SELECTION_PREDICATE_COLUMNS` order.
    """
    if thresholds is None:
        if selectivity is None:
            raise ValueError("need a selectivity or explicit thresholds")
        return selectivity, selection_thresholds(db, selectivity)
    if not isinstance(thresholds, dict):
        if len(thresholds) != len(SELECTION_PREDICATE_COLUMNS):
            raise ValueError(
                f"expected {len(SELECTION_PREDICATE_COLUMNS)} thresholds "
                f"(for {SELECTION_PREDICATE_COLUMNS}), got {len(thresholds)}"
            )
        thresholds = dict(zip(SELECTION_PREDICATE_COLUMNS, thresholds))
    thresholds = {column: float(value) for column, value in thresholds.items()}
    if set(thresholds) != set(SELECTION_PREDICATE_COLUMNS):
        raise ValueError(
            f"thresholds must cover exactly {SELECTION_PREDICATE_COLUMNS}"
        )
    if selectivity is None:
        lineitem = db.table("lineitem")
        fractions = [
            float(np.mean(lineitem[column] <= threshold))
            for column, threshold in thresholds.items()
        ]
        selectivity = min(max(float(np.mean(fractions)), 1e-9), 1.0 - 1e-9)
    return selectivity, thresholds


def selection_predicate_masks(
    db: Database, thresholds: dict[str, float]
) -> list[tuple[str, np.ndarray]]:
    """The three predicates' boolean outcome vectors over lineitem."""
    lineitem = db.table("lineitem")
    return [
        (column, lineitem[column] <= threshold)
        for column, threshold in thresholds.items()
    ]


def line_density(indices: np.ndarray, total_rows: int, itemsize: int = 8) -> float:
    """Fraction of a column's cache lines a gather at ``indices``
    touches (measured, for sparse-scan accounting)."""
    if total_rows <= 0 or not len(indices):
        return 1.0
    values_per_line = max(1, 64 // itemsize)
    touched = len(np.unique(indices // values_per_line))
    total_lines = -(-total_rows // values_per_line)
    return min(1.0, touched / total_lines)


class Engine(ABC):
    """Abstract profiled system.

    Concrete ``run_*`` implementations are transparently memoized per
    process through :mod:`repro.core.execcache` (keyed by engine class,
    method, database identity and arguments), so the profiling drivers
    stop re-executing identical runs.  Results served from the cache
    carry ``details["cached"] = True``.
    """

    #: Display name, e.g. "DBMS R", "Typer".
    name: str = "engine"
    #: Approximate hot-code footprint in bytes (drives front-end model).
    code_footprint_bytes: float = 4096.0
    #: Whether the engine has a SIMD (AVX-512) implementation.
    supports_simd: bool = False

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        from repro.core.execcache import CACHED_METHODS, memoized_execution

        for method_name in CACHED_METHODS:
            func = cls.__dict__.get(method_name)
            if func is None or getattr(func, "_execcache_wrapped", False):
                continue
            if getattr(func, "__isabstractmethod__", False):
                continue
            setattr(cls, method_name, memoized_execution(method_name, func))

    def _new_work(self) -> WorkProfile:
        return WorkProfile(code_footprint_bytes=self.code_footprint_bytes)

    def _check_simd(self, simd: bool) -> None:
        if simd and not self.supports_simd:
            raise ValueError(f"{self.name} has no SIMD implementation")

    # ------------------------------------------------------------------
    # Micro-benchmarks (Sections 3-5, 7, 8)
    # ------------------------------------------------------------------
    @abstractmethod
    def run_projection(self, db: Database, degree: int, simd: bool = False) -> QueryResult:
        """SUM over the first ``degree`` projection columns of lineitem."""

    @abstractmethod
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        """Projection of degree 4 with three predicates of the given
        individual selectivity; ``predicated`` selects the branch-free
        variant (Section 7).  ``thresholds`` (see
        :func:`resolve_selection`) bypasses the quantile derivation --
        the SQL frontend passes parsed literals through it."""

    @abstractmethod
    def run_join(self, db: Database, size: str, simd: bool = False) -> QueryResult:
        """Hash join micro-benchmark of the given size (Section 5)."""

    @abstractmethod
    def run_groupby(self, db: Database) -> QueryResult:
        """Group-by micro-benchmark (Section 2/6 discussion)."""

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_tpch(self, db: Database, query_id: str, predicated: bool = False) -> QueryResult:
        runners = {
            "Q1": self.run_q1,
            "Q6": self.run_q6,
            "Q9": self.run_q9,
            "Q18": self.run_q18,
        }
        if query_id not in runners:
            raise ValueError(f"unsupported TPC-H query {query_id!r}")
        if query_id == "Q6":
            return self.run_q6(db, predicated=predicated)
        if predicated:
            raise ValueError("predication is studied on Q6 only (Section 7)")
        return runners[query_id](db)

    @abstractmethod
    def run_q1(self, db: Database) -> QueryResult:
        """TPC-H Q1: low-cardinality group by."""

    @abstractmethod
    def run_q6(self, db: Database, predicated: bool = False) -> QueryResult:
        """TPC-H Q6: highly selective filter."""

    @abstractmethod
    def run_q9(self, db: Database) -> QueryResult:
        """TPC-H Q9: join-intensive."""

    @abstractmethod
    def run_q18(self, db: Database) -> QueryResult:
        """TPC-H Q18: high-cardinality group by."""
