"""Engine interface and shared micro-benchmark definitions.

The four profiled systems implement this interface.  Each ``run_*``
method *executes the query for real* on numpy data (results are
cross-checked across engines in the tests) while recording the work it
performs into a :class:`~repro.core.workprofile.WorkProfile`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.workprofile import WorkProfile
from repro.engines.morsel import merge_states
from repro.obs import trace
from repro.storage import Database
from repro.tpch.schema import PROJECTION_COLUMNS, SELECTION_PREDICATE_COLUMNS

#: Join micro-benchmark sizes, in paper order (Section 2).
JOIN_SIZES = ("small", "medium", "large")

#: Selectivities the selection micro-benchmark sweeps (per predicate).
SELECTION_SELECTIVITIES = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class JoinSpec:
    """One join micro-benchmark: build side, probe side and the summed
    expression over the probe table (Section 2)."""

    size: str
    build_table: str
    build_key: str
    probe_table: str
    probe_key: str
    sum_columns: tuple[str, ...]


JOIN_SPECS = {
    "small": JoinSpec(
        "small", "nation", "n_nationkey", "supplier", "s_nationkey",
        ("s_acctbal", "s_suppkey"),
    ),
    "medium": JoinSpec(
        "medium", "supplier", "s_suppkey", "partsupp", "ps_suppkey",
        ("ps_availqty", "ps_supplycost"),
    ),
    "large": JoinSpec(
        "large", "orders", "o_orderkey", "lineitem", "l_orderkey",
        PROJECTION_COLUMNS,
    ),
}


@dataclass
class QueryResult:
    """What one engine execution produced and what it cost."""

    workload: str
    value: object
    tuples: int
    work: WorkProfile
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.work.label = self.workload
        self.work.tuples = self.tuples

    @property
    def operator_work(self) -> dict[str, WorkProfile]:
        """Per-operator work profiles, when the engine recorded them
        (Section 6: query behaviour decomposes into operator behaviour)."""
        return self.details.get("operators", {})


class OperatorWork:
    """Accumulates per-operator work profiles during one execution.

    Engines that want operator-level attribution record each pipeline
    stage into its own profile; :meth:`total` merges them into the
    query-level profile the profiler consumes.
    """

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self.profiles: dict[str, WorkProfile] = {}

    def operator(self, name: str) -> WorkProfile:
        """The (new or existing) profile for one named operator."""
        if name not in self.profiles:
            profile = self._engine._new_work()
            profile.label = name
            self.profiles[name] = profile
        return self.profiles[name]

    def total(self) -> WorkProfile:
        """All operators merged into one query-level profile."""
        merged = self._engine._new_work()
        for profile in self.profiles.values():
            merged.merge(profile)
        return merged


def projection_columns(degree: int) -> tuple[str, ...]:
    """The lineitem columns a projection query of ``degree`` sums."""
    if not 1 <= degree <= len(PROJECTION_COLUMNS):
        raise ValueError(
            f"projection degree must be in [1, {len(PROJECTION_COLUMNS)}]"
        )
    return PROJECTION_COLUMNS[:degree]


def selection_thresholds(db: Database, selectivity: float) -> dict[str, float]:
    """Per-predicate thresholds giving each predicate the requested
    individual selectivity on the actual data (the micro-benchmark
    varies the selectivity of each individual predicate)."""
    if not 0.0 < selectivity < 1.0:
        raise ValueError("selectivity must be in (0, 1)")
    lineitem = db.table("lineitem")
    return {
        column: float(np.quantile(lineitem[column], selectivity))
        for column in SELECTION_PREDICATE_COLUMNS
    }


def resolve_selection(
    db: Database,
    selectivity: float | None,
    thresholds=None,
) -> tuple[float, dict[str, float]]:
    """Resolve the selection micro-benchmark's parameters.

    The hand-wired drivers pass a ``selectivity`` and derive per-column
    thresholds from the data; the SQL path parses literal thresholds
    and passes them through unchanged (so a round-trip is exact) with
    ``selectivity=None``, in which case the nominal per-predicate
    selectivity is measured from the data for labelling.  ``thresholds``
    may be a dict keyed by predicate column or a tuple in
    :data:`SELECTION_PREDICATE_COLUMNS` order.
    """
    if thresholds is None:
        if selectivity is None:
            raise ValueError("need a selectivity or explicit thresholds")
        return selectivity, selection_thresholds(db, selectivity)
    if not isinstance(thresholds, dict):
        if len(thresholds) != len(SELECTION_PREDICATE_COLUMNS):
            raise ValueError(
                f"expected {len(SELECTION_PREDICATE_COLUMNS)} thresholds "
                f"(for {SELECTION_PREDICATE_COLUMNS}), got {len(thresholds)}"
            )
        thresholds = dict(zip(SELECTION_PREDICATE_COLUMNS, thresholds))
    thresholds = {column: float(value) for column, value in thresholds.items()}
    if set(thresholds) != set(SELECTION_PREDICATE_COLUMNS):
        raise ValueError(
            f"thresholds must cover exactly {SELECTION_PREDICATE_COLUMNS}"
        )
    if selectivity is None:
        lineitem = db.table("lineitem")
        fractions = [
            float(np.mean(lineitem[column] <= threshold))
            for column, threshold in thresholds.items()
        ]
        selectivity = min(max(float(np.mean(fractions)), 1e-9), 1.0 - 1e-9)
    return selectivity, thresholds


def selection_predicate_masks(
    db: Database, thresholds: dict[str, float]
) -> list[tuple[str, np.ndarray]]:
    """The three predicates' boolean outcome vectors over lineitem."""
    lineitem = db.table("lineitem")
    return [
        (column, lineitem[column] <= threshold)
        for column, threshold in thresholds.items()
    ]


def line_density(indices: np.ndarray, total_rows: int, itemsize: int = 8) -> float:
    """Fraction of a column's cache lines a gather at ``indices``
    touches (measured, for sparse-scan accounting)."""
    if total_rows <= 0 or not len(indices):
        return 1.0
    values_per_line = max(1, 64 // itemsize)
    touched = len(np.unique(indices // values_per_line))
    total_lines = -(-total_rows // values_per_line)
    return min(1.0, touched / total_lines)


_RESOLVED_SELECTIONS: dict = {}
_RESOLVED_SELECTIONS_LOCK = threading.Lock()


def resolve_selection_cached(db: Database, selectivity, thresholds):
    """Memoized :func:`resolve_selection`.

    Morsel execution resolves the selection parameters once per query
    per process instead of once per morsel -- the quantile/mean passes
    scan whole columns and would otherwise dominate small morsels."""
    if isinstance(thresholds, dict):
        thresholds_key = tuple(sorted(thresholds.items()))
    elif thresholds is None:
        thresholds_key = None
    else:
        thresholds_key = tuple(float(value) for value in thresholds)
    key = (db.identity, selectivity, thresholds_key)
    with _RESOLVED_SELECTIONS_LOCK:
        if key in _RESOLVED_SELECTIONS:
            return _RESOLVED_SELECTIONS[key]
    resolved = resolve_selection(db, selectivity, thresholds)
    with _RESOLVED_SELECTIONS_LOCK:
        _RESOLVED_SELECTIONS.setdefault(key, resolved)
        while len(_RESOLVED_SELECTIONS) > 64:
            _RESOLVED_SELECTIONS.pop(next(iter(_RESOLVED_SELECTIONS)))
    return resolved


@dataclass
class MergedPartials:
    """The exactly merged state of one execution's morsel partials,
    handed to an engine's ``_finish_*`` method (the same object a
    single-shot run builds from its one full-range morsel)."""

    state: dict
    work: WorkProfile
    tuples: int
    operators: dict[str, WorkProfile] | None = None


class Engine(ABC):
    """Abstract profiled system.

    Concrete ``run_*`` implementations are transparently memoized per
    process through :mod:`repro.core.execcache` (keyed by engine class,
    method, database identity and arguments), so the profiling drivers
    stop re-executing identical runs.  Results served from the cache
    carry ``details["cached"] = True``.
    """

    #: Display name, e.g. "DBMS R", "Typer".
    name: str = "engine"
    #: Approximate hot-code footprint in bytes (drives front-end model).
    code_footprint_bytes: float = 4096.0
    #: Whether the engine has a SIMD (AVX-512) implementation.
    supports_simd: bool = False

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        from repro.core.execcache import CACHED_METHODS, memoized_execution

        for method_name in CACHED_METHODS:
            func = cls.__dict__.get(method_name)
            if func is None or getattr(func, "_execcache_wrapped", False):
                continue
            if getattr(func, "__isabstractmethod__", False):
                continue
            setattr(cls, method_name, memoized_execution(method_name, func))

    #: Deferred-work resolution rates (see
    #: :meth:`WorkProfile.record_pending`): pending key -> tuple of
    #: (record_work keyword, per-unit cost).  Applied once per profile
    #: at finalization so non-dyadic per-unit costs round identically
    #: for single-shot and merged morsel runs.
    PENDING_RATES: dict = {}

    def _new_work(self) -> WorkProfile:
        return WorkProfile(code_footprint_bytes=self.code_footprint_bytes)

    def _check_simd(self, simd: bool) -> None:
        if simd and not self.supports_simd:
            raise ValueError(f"{self.name} has no SIMD implementation")

    # ------------------------------------------------------------------
    # Morsel protocol (repro.core.parallel)
    # ------------------------------------------------------------------
    def _finalize_profile(self, work: WorkProfile) -> WorkProfile:
        """Resolve deferred work and prune sub-one-event entries.

        Both the single-shot path and the morsel merge path run every
        profile through this exactly once, immediately before building
        the final :class:`QueryResult`."""
        for key in sorted(work.pending):
            amount = work.pending[key]
            rates = self.PENDING_RATES[key]
            work.record_work(**{field_name: amount * rate for field_name, rate in rates})
        work.pending.clear()
        work.drop_negligible()
        return work

    def _partial_result(
        self,
        label: str,
        state: dict,
        tuples: int,
        work: WorkProfile,
        row_range: tuple[int, int],
        operators: dict[str, WorkProfile] | None = None,
    ) -> QueryResult:
        """Package one morsel's raw measurements as a partial result."""
        details: dict = {"partial": state, "row_range": (int(row_range[0]), int(row_range[1]))}
        if operators is not None:
            details["operators"] = operators
        return QueryResult(label, None, tuples, work, details)

    def merge_morsels(self, db: Database, method: str, kwargs: dict, partials) -> QueryResult:
        """Merge morsel partials of one execution into the final
        :class:`QueryResult`, bit-identical to a single-shot run.

        ``partials`` are the results of ``run_<method>(db, ...,
        row_range=...)`` calls whose ranges tile ``[0, n_rows)`` of the
        partitioned table.  Merging consumes the partials' state.
        """
        partials = list(partials)
        if not partials:
            raise ValueError("no morsel partials to merge")
        with trace.span("merge", morsels=len(partials)):
            return self._merge_morsels(db, method, kwargs, partials)

    def _merge_morsels(self, db, method, kwargs, partials) -> QueryResult:
        for partial in partials:
            if "partial" not in partial.details:
                raise ValueError("merge_morsels needs partial results (row_range runs)")
        partials.sort(key=lambda result: result.details["row_range"])
        state = partials[0].details["partial"]
        work = partials[0].work
        operators = partials[0].details.get("operators")
        tuples = partials[0].tuples
        for partial in partials[1:]:
            merge_states(state, partial.details["partial"])
            work.merge_partial(partial.work)
            tuples += partial.tuples
            other_ops = partial.details.get("operators")
            if (operators is None) != (other_ops is None):
                raise ValueError("partials disagree on operator attribution")
            if operators is not None:
                if operators.keys() != other_ops.keys():
                    raise ValueError("partials disagree on operator names")
                for name, profile in operators.items():
                    profile.merge_partial(other_ops[name])
        merged = MergedPartials(state=state, work=work, tuples=tuples, operators=operators)
        finisher = getattr(self, f"_finish_{method[len('run_'):]}", None)
        if finisher is None:
            raise ValueError(f"{self.name} has no morsel finisher for {method!r}")
        return finisher(db, merged, **dict(kwargs))

    def morsel_position_signature(
        self, db: Database, method: str, kwargs: dict, lo: int, hi: int
    ):
        """Hashable token capturing any *position-dependent* quantity a
        morsel partial of ``[lo, hi)`` records beyond its length.

        Every engine records translation-invariant work over 64-aligned
        ranges -- two equally-pruned morsels of equal length produce
        bit-identical partials -- so the default is None.  Engines with
        position-dependent accounting (DBMS R's page-granular scan
        bytes) override this so :mod:`repro.core.pruning` never clones a
        partial across positions that would have recorded differently.
        """
        return None

    def partition_rows(self, db: Database, method: str, kwargs: dict) -> int:
        """Row count of the table ``method`` partitions into morsels
        (the probe side for joins, lineitem for everything else).

        ``kwargs`` is a dict or the ``(key, value)`` item tuple passed
        to :meth:`merge_morsels`."""
        kwargs = dict(kwargs)
        if method == "run_join":
            size = kwargs.get("size") or (kwargs.get("args") or [None])[0]
            if size not in JOIN_SPECS:
                raise ValueError(f"unknown join size {size!r}")
            return db.table(JOIN_SPECS[size].probe_table).n_rows
        if method == "run_compiled":
            from repro.compile.program import compiled_program

            plan = kwargs.get("plan") or (kwargs.get("args") or [None])[0]
            return db.table(compiled_program(plan).driving).n_rows
        return db.table("lineitem").n_rows

    # ------------------------------------------------------------------
    # Micro-benchmarks (Sections 3-5, 7, 8)
    # ------------------------------------------------------------------
    @abstractmethod
    def run_projection(self, db: Database, degree: int, simd: bool = False) -> QueryResult:
        """SUM over the first ``degree`` projection columns of lineitem."""

    @abstractmethod
    def run_selection(
        self,
        db: Database,
        selectivity: float | None,
        predicated: bool = False,
        simd: bool = False,
        thresholds=None,
    ) -> QueryResult:
        """Projection of degree 4 with three predicates of the given
        individual selectivity; ``predicated`` selects the branch-free
        variant (Section 7).  ``thresholds`` (see
        :func:`resolve_selection`) bypasses the quantile derivation --
        the SQL frontend passes parsed literals through it."""

    @abstractmethod
    def run_join(self, db: Database, size: str, simd: bool = False) -> QueryResult:
        """Hash join micro-benchmark of the given size (Section 5)."""

    @abstractmethod
    def run_groupby(self, db: Database) -> QueryResult:
        """Group-by micro-benchmark (Section 2/6 discussion)."""

    # ------------------------------------------------------------------
    # TPC-H (Section 6)
    # ------------------------------------------------------------------
    def run_tpch(
        self,
        db: Database,
        query_id: str,
        predicated: bool = False,
        row_range=None,
    ) -> QueryResult:
        runners = {
            "Q1": self.run_q1,
            "Q6": self.run_q6,
            "Q9": self.run_q9,
            "Q18": self.run_q18,
        }
        if query_id not in runners:
            raise ValueError(f"unsupported TPC-H query {query_id!r}")
        # Forward row_range only when set so subclasses that override a
        # runner without morsel support keep working for full runs.
        extra = {} if row_range is None else {"row_range": row_range}
        if query_id == "Q6":
            return self.run_q6(db, predicated=predicated, **extra)
        if predicated:
            raise ValueError("predication is studied on Q6 only (Section 7)")
        return runners[query_id](db, **extra)

    # ------------------------------------------------------------------
    # Compiled kernel programs (repro.compile)
    # ------------------------------------------------------------------
    def run_compiled(self, db: Database, plan, row_range=None) -> QueryResult:
        """Execute a compiled fused kernel program for ``plan``.

        The program is shared across engines (compiled once per plan
        per process) and accumulates in exact units, so every engine
        and both executors produce bit-identical values.  Defined on
        the base class: the compiled path *is* the bespoke engine.
        """
        from repro.compile.program import execute_compiled

        return execute_compiled(self, db, plan, row_range)

    def _finish_compiled(self, db: Database, merged, plan) -> QueryResult:
        from repro.compile.program import finish_compiled

        return finish_compiled(self, db, merged, plan)

    @abstractmethod
    def run_q1(self, db: Database) -> QueryResult:
        """TPC-H Q1: low-cardinality group by."""

    @abstractmethod
    def run_q6(self, db: Database, predicated: bool = False) -> QueryResult:
        """TPC-H Q6: highly selective filter."""

    @abstractmethod
    def run_q9(self, db: Database) -> QueryResult:
        """TPC-H Q9: join-intensive."""

    @abstractmethod
    def run_q18(self, db: Database) -> QueryResult:
        """TPC-H Q18: high-cardinality group by."""


def _wrap_base_cached_methods() -> None:
    """Memoize ``run_*`` methods defined on the base class itself.

    ``__init_subclass__`` wraps only methods a subclass defines, so the
    concrete ``run_compiled`` (shared by every engine) is wrapped here,
    exactly once, with the same execution-cache semantics."""
    from repro.core.execcache import memoized_execution

    if not getattr(Engine.run_compiled, "_execcache_wrapped", False):
        Engine.run_compiled = memoized_execution(
            "run_compiled", Engine.run_compiled
        )


_wrap_base_cached_methods()
