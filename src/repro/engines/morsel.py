"""Shared helpers for morsel (row-range) execution.

The engines' ``run_*`` methods accept ``row_range=(lo, hi)`` and then
execute only that slice of the partitioned table, returning a *partial*
:class:`~repro.engines.base.QueryResult` whose ``details["partial"]``
carries exactly mergeable value state.  This module holds what all four
engines share:

* **Alignment** -- morsel boundaries are multiples of
  :data:`MORSEL_ALIGN` rows, so cache lines (8 values of 8 bytes) and
  row-store pages never straddle a boundary and per-morsel line/page
  counts add up exactly to the single-shot counts.
* **Range-sliced byte accounting** -- ``bytes_for_rows`` /
  ``row_scan_bytes`` are the ranged versions of
  ``ColumnTable.bytes_for`` / ``RowTable.scan_bytes`` and telescope
  exactly (integer bytes, first-row page attribution).
* **Shared global structures** -- hash tables, group-by tables and
  sorted lookup sides depend on *all* rows, not a morsel's; they are
  built once per process and memoized by database identity + tag, so a
  worker executing many morsels never rebuilds them.
* **Exactly mergeable state** -- :func:`merge_states` folds the
  per-morsel value states (ints, :class:`ExactSum`, numpy arrays, sets,
  nested dicts) with exact, associative, commutative operations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.core.exactsum import ExactSum

#: Morsel boundaries must be multiples of this row count: one 64-byte
#: cache line of the widest (8-byte) values, which also divides the
#: row-store rows-per-page granularity used for page attribution.
MORSEL_ALIGN = 64

#: Values per cache line used for gather density accounting -- the
#: engines account all gathers at the 8-byte granularity of the summed
#: money columns (matching :func:`repro.engines.base.line_density`'s
#: default).
_VALUES_PER_LINE = 8


def resolve_range(row_range, n_rows: int) -> tuple[int, int]:
    """Validate ``row_range`` against the partitioned table.

    ``None`` means the full table.  Explicit ranges must be non-empty,
    inside ``[0, n_rows]`` and aligned to :data:`MORSEL_ALIGN` (the
    upper bound may be ``n_rows`` itself for the final morsel).
    """
    if row_range is None:
        return 0, int(n_rows)
    lo, hi = int(row_range[0]), int(row_range[1])
    if not 0 <= lo < hi <= n_rows:
        raise ValueError(
            f"row_range {row_range!r} out of bounds for {n_rows} rows"
        )
    if lo % MORSEL_ALIGN or (hi != n_rows and hi % MORSEL_ALIGN):
        raise ValueError(
            f"row_range {row_range!r} must be aligned to {MORSEL_ALIGN} rows"
        )
    return lo, hi


def morsel_ranges(n_rows: int, pieces: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into up to ``pieces`` aligned, non-empty,
    contiguous ranges of near-equal size."""
    if n_rows <= 0:
        raise ValueError("cannot partition an empty table")
    if pieces <= 0:
        raise ValueError("pieces must be positive")
    bounds = [0]
    for index in range(1, pieces):
        cut = (n_rows * index // pieces) // MORSEL_ALIGN * MORSEL_ALIGN
        if cut > bounds[-1]:
            bounds.append(cut)
    bounds.append(n_rows)
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


# ----------------------------------------------------------------------
# Ranged byte accounting
# ----------------------------------------------------------------------
def bytes_for_rows(table, column_names, lo: int, hi: int) -> int:
    """Bytes the rows ``[lo, hi)`` of the named columns occupy; sums to
    ``table.bytes_for(column_names)`` over any aligned partitioning.

    Always the *logical* (decoded) widths: work profiles are defined
    over them regardless of how the columns are stored, which is what
    keeps encoded and raw execution bit-identical.  The compressed
    footprint goes through :func:`encoded_bytes_for_rows` instead."""
    return sum(table.column(name).itemsize for name in column_names) * (hi - lo)


def encoded_bytes_for_rows(
    table, column_names, lo: int, hi: int, decoded=()
) -> float:
    """Bytes a code-domain scan of rows ``[lo, hi)`` actually reads:
    the encoded scan width for encoded columns, the raw width
    otherwise.  This is the opt-in side channel the compression
    analyses (``sec8-compression``, the bench) feed into the bandwidth
    model; the default execution path never records it.

    ``decoded`` names columns the execution decodes before use despite
    their encoding -- measures whose morph decision
    (``details["encoded_agg"]``) chose decode-then-sum stream at their
    *logical* width, which keeps modeled byte volumes honest now that
    aggregation itself can stay in the code domain."""
    decoded = set(decoded)
    total = 0.0
    for name in column_names:
        encoded = table.encoding(name) if hasattr(table, "encoding") else None
        if encoded is not None and name not in decoded:
            total += encoded.scan_itemsize * (hi - lo)
        else:
            total += table.column(name).itemsize * (hi - lo)
    return total


def row_page_geometry(table) -> tuple[int, int]:
    """(row_bytes, rows_per_page) of a table's row-layout twin, derived
    from the column dtypes without materialising the structured array
    (matching :class:`repro.storage.row.RowTable`'s construction)."""
    from repro.storage.row import DEFAULT_PAGE_BYTES

    dtype = np.dtype(
        [(name, table.column(name).dtype) for name in table.column_names]
    )
    row_bytes = dtype.itemsize
    rows_per_page = max(1, DEFAULT_PAGE_BYTES // row_bytes) if table.n_rows else 1
    return row_bytes, rows_per_page


def row_scan_bytes(db, table_name: str, lo: int, hi: int) -> float:
    """Bytes a row-store scan of rows ``[lo, hi)`` moves: each page is
    attributed to the morsel containing its first row, so per-morsel
    page counts telescope exactly to ``RowTable.scan_bytes()``."""
    from repro.storage.row import DEFAULT_PAGE_BYTES

    table = db.table(table_name)
    if not table.n_rows:
        return 0.0
    _, rows_per_page = row_page_geometry(table)
    pages = -(-hi // rows_per_page) - (-(-lo // rows_per_page))
    return float(pages * DEFAULT_PAGE_BYTES)


def gather_lines(global_indices: np.ndarray, lo: int, hi: int) -> tuple[int, int]:
    """(touched, total) cache-line counts of a gather at the given
    *global* row indices within morsel ``[lo, hi)``.

    Lines are attributed to the morsel containing their first row;
    with :data:`MORSEL_ALIGN`-aligned morsels every line lies entirely
    inside one morsel, so both counts sum exactly to the single-shot
    ``line_density`` accounting.
    """
    touched = int(len(np.unique(np.asarray(global_indices) // _VALUES_PER_LINE)))
    total = -(-hi // _VALUES_PER_LINE) - (-(-lo // _VALUES_PER_LINE))
    return touched, total


# ----------------------------------------------------------------------
# Shared global structures
# ----------------------------------------------------------------------
_STRUCTURES: OrderedDict[tuple, object] = OrderedDict()
_STRUCTURES_LOCK = threading.Lock()
_STRUCTURES_CAP = 16


def shared_structure(db, tag, build):
    """Build-once access to a query's global data structures (hash
    tables, sorted lookup sides) keyed by database identity + ``tag``.

    The structures depend on entire base tables, never on a morsel's
    row range, so every morsel of every execution of the same query
    over the same data shares one instance.  A small LRU bounds worker
    memory."""
    key = (db.identity, tag)
    with _STRUCTURES_LOCK:
        if key in _STRUCTURES:
            _STRUCTURES.move_to_end(key)
            return _STRUCTURES[key]
    value = build()
    with _STRUCTURES_LOCK:
        existing = _STRUCTURES.get(key)
        if existing is not None:
            return existing
        _STRUCTURES[key] = value
        while len(_STRUCTURES) > _STRUCTURES_CAP:
            _STRUCTURES.popitem(last=False)
    return value


def clear_shared_structures() -> None:
    with _STRUCTURES_LOCK:
        _STRUCTURES.clear()


# ----------------------------------------------------------------------
# Exactly mergeable value state
# ----------------------------------------------------------------------
def merge_states(target: dict, other: dict) -> dict:
    """Fold one morsel's value state into another, exactly.

    Supported leaf types and their merge operations (all exact,
    associative and commutative, so work stealing may deliver partials
    in any order):

    - ``int`` and (dyadic) ``float``: addition
    - :class:`ExactSum`: exact addition
    - ``numpy.ndarray``: elementwise addition (integer-valued contents)
    - ``set`` / ``frozenset``: union
    - ``dict``: recursive key-wise merge (missing keys are adopted)
    - keys starting with ``"const_"``: must be equal on both sides
    """
    for key, value in other.items():
        if key not in target:
            target[key] = value
            continue
        current = target[key]
        if key.startswith("const_"):
            if isinstance(current, np.ndarray) or isinstance(value, np.ndarray):
                if not np.array_equal(current, value):
                    raise ValueError(f"morsel constant {key!r} diverges")
            elif current != value:
                raise ValueError(
                    f"morsel constant {key!r} diverges: {current!r} vs {value!r}"
                )
        elif isinstance(current, ExactSum):
            target[key] = current + value
        elif isinstance(current, dict):
            merge_states(current, value)
        elif isinstance(current, (set, frozenset)):
            target[key] = set(current) | set(value)
        elif isinstance(current, np.ndarray):
            target[key] = current + value
        elif isinstance(current, (int, float, np.integer, np.floating)):
            target[key] = current + value
        else:
            raise TypeError(
                f"cannot merge state key {key!r} of type {type(current).__name__}"
            )
    return target
