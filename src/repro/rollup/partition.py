"""Declarative range partitioning of a :class:`ColumnTable`.

A :class:`PartitionSpec` names one column and a strictly increasing
sequence of break values; partition ``i`` holds the rows whose value
falls in ``[breaks[i-1], breaks[i])`` (open at both ends).  Partitioned
storage here means *clustering*: the table's rows are physically sorted
so each partition is one contiguous row range, and a
:class:`Partitioning` records the row bounds plus per-partition min/max
statistics of the partition column.

Those statistics serve two consumers:

* :mod:`repro.core.pruning` uses them as a coarse pre-pass -- a chunk
  wholly inside a partition the statistics decide inherits the verdict
  without the zone map ever being built or consulted;
* :mod:`repro.rollup.router` uses them to decide whether a query's
  range predicate is *partition-decidable* (every non-empty partition
  either passes entirely or fails entirely), the precondition for
  answering the query from a pre-aggregated rollup.

Verdicts are theorems, never guesses: a partition is ALL_TRUE only when
its observed ``[min, max]`` interval proves every row passes, ALL_FALSE
only when it proves none can.  Empty partitions report ALL_FALSE
(vacuously: no row can pass) and cover no rows, so they never decide a
chunk and never contribute to a routed result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.zonemap import ALL_FALSE, ALL_TRUE, MIXED


@dataclass(frozen=True)
class PartitionSpec:
    """Range partitioning on one column.

    ``breaks`` must be strictly increasing; with ``k`` breaks there are
    ``k + 1`` partitions (the first and last are open-ended).
    """

    column: str
    breaks: tuple[float, ...]

    def __post_init__(self) -> None:
        breaks = tuple(float(b) for b in self.breaks)
        object.__setattr__(self, "breaks", breaks)
        if not breaks:
            raise ValueError("a PartitionSpec needs at least one break")
        if any(b >= c for b, c in zip(breaks, breaks[1:])):
            raise ValueError("partition breaks must be strictly increasing")

    @property
    def n_partitions(self) -> int:
        return len(self.breaks) + 1

    def partition_ids(self, values: np.ndarray) -> np.ndarray:
        """Partition id of each value (``0 .. n_partitions - 1``)."""
        return np.searchsorted(
            np.asarray(self.breaks), np.asarray(values), side="right"
        ).astype(np.int64)


def _interval_verdict(op: str, threshold: float, mn: float, mx: float) -> int:
    """Exact three-valued verdict of ``value <op> threshold`` over a
    non-empty set of values spanning ``[mn, mx]``."""
    if op == "le":
        return ALL_TRUE if mx <= threshold else ALL_FALSE if mn > threshold else MIXED
    if op == "lt":
        return ALL_TRUE if mx < threshold else ALL_FALSE if mn >= threshold else MIXED
    if op == "ge":
        return ALL_TRUE if mn >= threshold else ALL_FALSE if mx < threshold else MIXED
    if op == "gt":
        return ALL_TRUE if mn > threshold else ALL_FALSE if mx <= threshold else MIXED
    if op == "eq":
        if mn == threshold and mx == threshold:
            return ALL_TRUE
        return ALL_FALSE if (threshold < mn or threshold > mx) else MIXED
    return MIXED


@dataclass(frozen=True)
class Partitioning:
    """Clustered-partition metadata attached to a :class:`ColumnTable`.

    ``bounds`` has ``n_partitions + 1`` entries: partition ``p`` is rows
    ``[bounds[p], bounds[p + 1])``.  ``mins``/``maxs`` are the observed
    value-domain extrema of the partition column per partition (NaN for
    empty partitions).
    """

    column: str
    breaks: tuple[float, ...]
    bounds: np.ndarray = field(compare=False)
    mins: np.ndarray = field(compare=False)
    maxs: np.ndarray = field(compare=False)

    @property
    def n_partitions(self) -> int:
        return len(self.bounds) - 1

    @property
    def n_rows(self) -> int:
        return int(self.bounds[-1])

    @property
    def row_counts(self) -> np.ndarray:
        return np.diff(self.bounds)

    def partition_range(self, p: int) -> tuple[int, int]:
        return int(self.bounds[p]), int(self.bounds[p + 1])

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def verdicts(self, op: str, threshold: float) -> np.ndarray:
        """Per-partition verdict of ``column <op> threshold`` (int8 of
        ALL_FALSE / ALL_TRUE / MIXED; empty partitions are ALL_FALSE)."""
        out = np.full(self.n_partitions, ALL_FALSE, dtype=np.int8)
        counts = self.row_counts
        for p in range(self.n_partitions):
            if counts[p] > 0:
                out[p] = _interval_verdict(
                    op, float(threshold), float(self.mins[p]), float(self.maxs[p])
                )
        return out

    def chunk_verdicts(
        self, op: str, threshold: float, chunk_rows: int, n_rows: int
    ) -> np.ndarray:
        """Per-chunk verdicts decided purely from partition statistics.

        A chunk wholly inside one partition inherits that partition's
        verdict; a chunk straddling several inherits their common
        verdict when the (non-empty) overlapped partitions agree, and is
        MIXED otherwise.  The zone map is never consulted here -- the
        caller refines remaining MIXED chunks against it only if any
        survive.
        """
        if n_rows != self.n_rows:
            raise ValueError(
                f"partitioning covers {self.n_rows} rows, table has {n_rows}"
            )
        n_chunks = -(-n_rows // chunk_rows)
        out = np.full(n_chunks, MIXED, dtype=np.int8)
        partition_verdicts = self.verdicts(op, threshold)
        counts = self.row_counts
        starts = np.arange(n_chunks, dtype=np.int64) * chunk_rows
        ends = np.minimum(starts + chunk_rows, n_rows)
        # Last partition whose start is <= the row; bounds[p] <= row <
        # bounds[p + 1] and partition p is non-empty at that row.
        p_lo = np.searchsorted(self.bounds, starts, side="right") - 1
        p_hi = np.searchsorted(self.bounds, ends - 1, side="right") - 1
        inside = p_lo == p_hi
        out[inside] = partition_verdicts[p_lo[inside]]
        for index in np.flatnonzero(~inside):
            spanned = {
                int(partition_verdicts[p])
                for p in range(int(p_lo[index]), int(p_hi[index]) + 1)
                if counts[p] > 0
            }
            if len(spanned) == 1:
                out[index] = spanned.pop()
        return out

    # ------------------------------------------------------------------
    # Serialization (dbcache / shm)
    # ------------------------------------------------------------------
    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {"column": self.column, "breaks": [float(b) for b in self.breaks]}
        arrays = {
            "bounds": np.ascontiguousarray(self.bounds, dtype=np.int64),
            "mins": np.ascontiguousarray(self.mins, dtype=np.float64),
            "maxs": np.ascontiguousarray(self.maxs, dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict) -> "Partitioning":
        return cls(
            column=str(meta["column"]),
            breaks=tuple(float(b) for b in meta["breaks"]),
            bounds=np.asarray(arrays["bounds"], dtype=np.int64),
            mins=np.asarray(arrays["mins"], dtype=np.float64),
            maxs=np.asarray(arrays["maxs"], dtype=np.float64),
        )


def build_partitioning(values: np.ndarray, spec: PartitionSpec) -> Partitioning:
    """Partitioning metadata for an already *clustered* column.

    ``values`` must be sorted by partition id (not necessarily by value
    within a partition); raises otherwise, because contiguous row bounds
    would be a lie.
    """
    values = np.asarray(values)
    ids = spec.partition_ids(values)
    if len(ids) and np.any(np.diff(ids) < 0):
        raise ValueError(
            f"column {spec.column!r} is not clustered by partition; "
            f"sort rows by partition id first"
        )
    n = spec.n_partitions
    bounds = np.searchsorted(ids, np.arange(n + 1), side="left").astype(np.int64)
    mins = np.full(n, np.nan)
    maxs = np.full(n, np.nan)
    for p in range(n):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        if hi > lo:
            mins[p] = values[lo:hi].min()
            maxs[p] = values[lo:hi].max()
    return Partitioning(
        column=spec.column, breaks=spec.breaks, bounds=bounds, mins=mins, maxs=maxs
    )


def partitioned_database(db, spec: PartitionSpec, table_name: str = "lineitem"):
    """A twin database whose ``table_name`` is clustered by ``spec``
    with a :class:`Partitioning` attached.

    Rows are stably sorted by partition id -- within a partition the
    original row order is preserved, so per-partition aggregates stay
    reproducible.  Columns are re-encoded with the standard load-time
    policy, exactly like a fresh generation.
    """
    from repro.storage import ColumnTable, Database
    from repro.storage.encoding import encode_columns

    twin = Database(name=f"{db.name}-part", scale_factor=db.scale_factor)
    for name in db.table_names:
        table = db.table(name)
        columns = {c: np.asarray(table[c]) for c in table.column_names}
        if name == table_name:
            if spec.column not in columns:
                raise KeyError(
                    f"table {table_name!r} has no column {spec.column!r}"
                )
            order = np.argsort(spec.partition_ids(columns[spec.column]), kind="stable")
            columns = {c: values[order] for c, values in columns.items()}
        new_table = ColumnTable(name, encode_columns(columns))
        if name == table_name:
            new_table.set_partitioning(
                build_partitioning(np.asarray(new_table[spec.column]), spec)
            )
        twin.add_table(new_table)
    return twin
