"""Materialized rollup tables: pre-aggregated partials per (group,
partition).

A :class:`RollupTable` holds one row per (partition, group-key tuple)
present in the base table, and for each aggregate a *partial* that
merges exactly:

* ``sum`` partials are :class:`~repro.core.exactsum.ExactSum` units --
  arbitrary-precision integers counting 2^-1074 quanta.  Adding units
  across any subset of rollup rows and rounding once reproduces, bit
  for bit, what the engines compute with ``ExactSum.of_array`` over the
  same base rows.  Units are persisted as a sign byte plus a fixed-width
  big-endian magnitude (the width is per-aggregate metadata), so the
  payload is plain numpy arrays that ship through dbcache files and
  shared-memory segments unchanged.
* ``count`` partials are int64 row counts.
* ``min``/``max`` partials are float64 extrema (min of mins is the min).

The table is deliberately storage-only: matching a query against a
rollup and assembling a result live in :mod:`repro.rollup.router`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

AGG_KINDS = ("sum", "count", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column of a rollup: ``kind`` over expression
    ``expr`` (an :data:`repro.rollup.build.EXPRESSIONS` key; empty for
    ``count``)."""

    name: str
    kind: str
    expr: str = ""

    def __post_init__(self) -> None:
        if self.kind not in AGG_KINDS:
            raise ValueError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and not self.expr:
            raise ValueError(f"aggregate {self.name!r} needs an expression")


def encode_units(units: list[int]) -> tuple[np.ndarray, np.ndarray, int]:
    """Pack ExactSum unit integers as (signs, magnitudes, width).

    ``signs`` is int8; ``magnitudes`` is a flat uint8 array of
    ``len(units) * width`` big-endian bytes.
    """
    signs = np.array([(u > 0) - (u < 0) for u in units], dtype=np.int8)
    width = max((abs(u).bit_length() + 7) // 8 for u in units) if units else 1
    width = max(width, 1)
    magnitudes = np.zeros(len(units) * width, dtype=np.uint8)
    for index, value in enumerate(units):
        magnitudes[index * width:(index + 1) * width] = np.frombuffer(
            abs(value).to_bytes(width, "big"), dtype=np.uint8
        )
    return signs, magnitudes, width


def decode_unit(signs: np.ndarray, magnitudes: np.ndarray, width: int,
                index: int) -> int:
    """One row's ExactSum units back as a python int."""
    raw = magnitudes[index * width:(index + 1) * width]
    return int(signs[index]) * int.from_bytes(bytes(raw.tobytes()), "big")


class RollupTable:
    """One materialized rollup (see module docstring)."""

    def __init__(
        self,
        name: str,
        base_table: str,
        keys: tuple[str, ...],
        partition_column: str | None,
        n_partitions: int,
        source_rows: int,
        partition_ids: np.ndarray,
        key_columns: dict[str, np.ndarray],
        aggregates: tuple[AggregateSpec, ...],
        sum_signs: dict[str, np.ndarray],
        sum_magnitudes: dict[str, np.ndarray],
        sum_widths: dict[str, int],
        plain: dict[str, np.ndarray],
    ):
        self.name = name
        self.base_table = base_table
        self.keys = tuple(keys)
        self.partition_column = partition_column
        self.n_partitions = int(n_partitions)
        self.source_rows = int(source_rows)
        self.partition_ids = np.asarray(partition_ids, dtype=np.int64)
        self.key_columns = {k: np.asarray(v) for k, v in key_columns.items()}
        self.aggregates = tuple(aggregates)
        self._sum_signs = sum_signs
        self._sum_magnitudes = sum_magnitudes
        self._sum_widths = {k: int(v) for k, v in sum_widths.items()}
        self._plain = plain
        n = len(self.partition_ids)
        for key_name, values in self.key_columns.items():
            if len(values) != n:
                raise ValueError(f"key column {key_name!r} length mismatch")

    @property
    def n_rows(self) -> int:
        return len(self.partition_ids)

    @property
    def nbytes(self) -> int:
        total = self.partition_ids.nbytes
        total += sum(v.nbytes for v in self.key_columns.values())
        total += sum(v.nbytes for v in self._sum_signs.values())
        total += sum(v.nbytes for v in self._sum_magnitudes.values())
        total += sum(v.nbytes for v in self._plain.values())
        return total

    def aggregate_named(self, kind: str, expr: str = "") -> AggregateSpec | None:
        """The aggregate of this kind over this expression, if present."""
        for spec in self.aggregates:
            if spec.kind == kind and spec.expr == expr:
                return spec
        return None

    def row_bytes(self, agg_names: tuple[str, ...]) -> int:
        """Per-row bytes a reader touches for the named aggregates plus
        the key and partition-id columns (the router's honest traffic)."""
        per_row = self.partition_ids.itemsize
        per_row += sum(v.dtype.itemsize for v in self.key_columns.values())
        by_name = {spec.name: spec for spec in self.aggregates}
        for agg_name in agg_names:
            spec = by_name[agg_name]
            if spec.kind == "sum":
                per_row += 1 + self._sum_widths[agg_name]
            else:
                per_row += self._plain[agg_name].dtype.itemsize
        return per_row

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def sum_units(self, agg_name: str, indices: np.ndarray) -> int:
        """Exact total units of a ``sum`` aggregate over rollup rows."""
        signs = self._sum_signs[agg_name]
        magnitudes = self._sum_magnitudes[agg_name]
        width = self._sum_widths[agg_name]
        total = 0
        for index in np.asarray(indices, dtype=np.int64):
            total += decode_unit(signs, magnitudes, width, int(index))
        return total

    def unit_at(self, agg_name: str, index: int) -> int:
        return decode_unit(
            self._sum_signs[agg_name],
            self._sum_magnitudes[agg_name],
            self._sum_widths[agg_name],
            int(index),
        )

    def plain_column(self, agg_name: str) -> np.ndarray:
        """The int64/float64 array of a count/min/max aggregate."""
        return self._plain[agg_name]

    # ------------------------------------------------------------------
    # Serialization (dbcache / shm)
    # ------------------------------------------------------------------
    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {
            "name": self.name,
            "base_table": self.base_table,
            "keys": list(self.keys),
            "partition_column": self.partition_column,
            "n_partitions": self.n_partitions,
            "source_rows": self.source_rows,
            "aggregates": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "expr": spec.expr,
                    **(
                        {"width": self._sum_widths[spec.name]}
                        if spec.kind == "sum"
                        else {}
                    ),
                }
                for spec in self.aggregates
            ],
        }
        arrays: dict[str, np.ndarray] = {"partition_ids": self.partition_ids}
        for key_name, values in self.key_columns.items():
            arrays[f"key.{key_name}"] = values
        for spec in self.aggregates:
            if spec.kind == "sum":
                arrays[f"agg.{spec.name}.sign"] = self._sum_signs[spec.name]
                arrays[f"agg.{spec.name}.mag"] = self._sum_magnitudes[spec.name]
            else:
                arrays[f"agg.{spec.name}"] = self._plain[spec.name]
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict) -> "RollupTable":
        keys = tuple(meta["keys"])
        aggregates = tuple(
            AggregateSpec(entry["name"], entry["kind"], entry.get("expr", ""))
            for entry in meta["aggregates"]
        )
        sum_signs: dict[str, np.ndarray] = {}
        sum_magnitudes: dict[str, np.ndarray] = {}
        sum_widths: dict[str, int] = {}
        plain: dict[str, np.ndarray] = {}
        for entry, spec in zip(meta["aggregates"], aggregates):
            if spec.kind == "sum":
                sum_signs[spec.name] = np.asarray(
                    arrays[f"agg.{spec.name}.sign"], dtype=np.int8
                )
                sum_magnitudes[spec.name] = np.asarray(
                    arrays[f"agg.{spec.name}.mag"], dtype=np.uint8
                )
                sum_widths[spec.name] = int(entry["width"])
            else:
                plain[spec.name] = np.asarray(arrays[f"agg.{spec.name}"])
        return cls(
            name=str(meta["name"]),
            base_table=str(meta["base_table"]),
            keys=keys,
            partition_column=meta.get("partition_column"),
            n_partitions=int(meta["n_partitions"]),
            source_rows=int(meta["source_rows"]),
            partition_ids=np.asarray(arrays["partition_ids"], dtype=np.int64),
            key_columns={k: np.asarray(arrays[f"key.{k}"]) for k in keys},
            aggregates=aggregates,
            sum_signs=sum_signs,
            sum_magnitudes=sum_magnitudes,
            sum_widths=sum_widths,
            plain=plain,
        )

    def __reduce__(self):
        raise TypeError(
            f"RollupTable {self.name!r} must not be pickled; ship rollup "
            f"payloads across processes via repro.storage.shm instead"
        )
