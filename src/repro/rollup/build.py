"""Building rollup tables from a :class:`RollupSpec`.

Exactness contract
------------------
A rollup answers a query bit-identically only if its partials were
computed with the *same per-row arithmetic* the engines use.  The
expression registry below therefore mirrors the engines' canonical
evaluations element for element:

* ``proj:k`` is the degree-``k`` projection sum:
  ``0.0 + col_1 + ... + col_k`` per row, over
  :data:`~repro.tpch.schema.PROJECTION_COLUMNS` in order -- exactly the
  fused loop every engine runs for ``run_projection`` (and, at k = 1,
  the ``l_extendedprice`` sum of ``run_groupby`` and Q1's base price).
* ``disc_price`` is ``l_extendedprice * (1.0 - l_discount)`` and
  ``charge`` is ``disc_price * (1.0 + l_tax)``, Q1's derived measures.
* ``col:<name>`` is the raw column.

All are per-row (elementwise) computations, so a partial over any row
subset composes: ``ExactSum.of_array`` is exact over any split, and
adding unit counts across (group, partition) cells reproduces the
engines' single-shot sums to the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exactsum import ExactSum
from repro.rollup.table import AggregateSpec, RollupTable, encode_units
from repro.tpch.schema import PROJECTION_COLUMNS


def _projection_prefix(table, degree: int, lo: int, hi: int) -> np.ndarray:
    total = np.zeros(hi - lo)
    for column in PROJECTION_COLUMNS[:degree]:
        total = total + table[column][lo:hi]
    return total


def evaluate_expression(table, expr: str, lo: int, hi: int) -> np.ndarray:
    """Per-row values of one registered expression over ``[lo, hi)``."""
    if expr.startswith("proj:"):
        degree = int(expr.split(":", 1)[1])
        if not 1 <= degree <= len(PROJECTION_COLUMNS):
            raise ValueError(f"unknown projection degree in {expr!r}")
        return _projection_prefix(table, degree, lo, hi)
    if expr == "disc_price":
        price = table["l_extendedprice"][lo:hi]
        discount = table["l_discount"][lo:hi]
        return price * (1.0 - discount)
    if expr == "charge":
        price = table["l_extendedprice"][lo:hi]
        discount = table["l_discount"][lo:hi]
        tax = table["l_tax"][lo:hi]
        disc_price = price * (1.0 - discount)
        return disc_price * (1.0 + tax)
    if expr.startswith("col:"):
        return np.asarray(table[expr.split(":", 1)[1]][lo:hi])
    raise ValueError(f"unknown rollup expression {expr!r}")


#: Aggregates of the default lineitem rollup: everything the router can
#: substitute for the projection / group-by micro-benchmarks and Q1,
#: plus count (group presence / regrouping) and min/max partials.
DEFAULT_AGGREGATES = (
    AggregateSpec("sum_qty", "sum", "col:l_quantity"),
    AggregateSpec("sum_base_price", "sum", "proj:1"),
    AggregateSpec("sum_disc_price", "sum", "disc_price"),
    AggregateSpec("sum_charge", "sum", "charge"),
    AggregateSpec("proj2", "sum", "proj:2"),
    AggregateSpec("proj3", "sum", "proj:3"),
    AggregateSpec("proj4", "sum", "proj:4"),
    AggregateSpec("row_count", "count"),
    AggregateSpec("min_base_price", "min", "proj:1"),
    AggregateSpec("max_base_price", "max", "proj:1"),
)


@dataclass(frozen=True)
class RollupSpec:
    """Declarative description of one rollup to materialize."""

    name: str
    table: str = "lineitem"
    keys: tuple[str, ...] = ("l_returnflag", "l_linestatus")
    aggregates: tuple[AggregateSpec, ...] = field(default=DEFAULT_AGGREGATES)

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        names = [spec.name for spec in self.aggregates]
        if len(set(names)) != len(names):
            raise ValueError("duplicate aggregate names in rollup spec")


def default_lineitem_spec(name: str = "lineitem_by_flag_status") -> RollupSpec:
    return RollupSpec(name=name)


def _group_index(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, int, list]:
    """Factorize rows into dense group ids (deterministic: groups are
    ordered by ascending key tuples).  Returns (inverse, n_groups,
    per-key group-representative value arrays)."""
    if not key_arrays:
        raise ValueError("internal: _group_index needs keys")
    uniques_per_key = []
    ids_per_key = []
    for values in key_arrays:
        uniques, ids = np.unique(values, return_inverse=True)
        uniques_per_key.append(uniques)
        ids_per_key.append(ids)
    combined = ids_per_key[0].astype(np.int64)
    for uniques, ids in zip(uniques_per_key[1:], ids_per_key[1:]):
        combined = combined * len(uniques) + ids
    group_codes, inverse = np.unique(combined, return_inverse=True)
    # Decode each group's key values back from its combined code.
    representatives = []
    codes = group_codes.copy()
    for uniques in reversed(uniques_per_key[1:]):
        representatives.append(uniques[codes % len(uniques)])
        codes = codes // len(uniques)
    representatives.append(uniques_per_key[0][codes])
    representatives.reverse()
    return inverse, len(group_codes), representatives


def build_rollup(db, spec: RollupSpec) -> RollupTable:
    """Materialize one rollup over the (possibly partitioned) base table.

    With a :class:`~repro.rollup.partition.Partitioning` attached the
    rollup holds one row per (partition, group) present; without one the
    whole table counts as a single partition (rollups still answer
    predicate-free queries).  Empty partitions contribute no rows.
    """
    table = db.table(spec.table)
    partitioning = getattr(table, "partitioning", None)
    if partitioning is not None:
        bounds = [int(b) for b in partitioning.bounds]
        partition_column = partitioning.column
        n_partitions = partitioning.n_partitions
    else:
        bounds = [0, table.n_rows]
        partition_column = None
        n_partitions = 1

    sum_specs = [s for s in spec.aggregates if s.kind == "sum"]
    other_specs = [s for s in spec.aggregates if s.kind != "sum"]
    units: dict[str, list[int]] = {s.name: [] for s in sum_specs}
    plain_lists: dict[str, list] = {s.name: [] for s in other_specs}
    key_lists: dict[str, list] = {k: [] for k in spec.keys}
    partition_id_list: list[int] = []

    for p in range(n_partitions):
        lo, hi = bounds[p], bounds[p + 1]
        if hi <= lo:
            continue
        expressions = {
            agg.expr: evaluate_expression(table, agg.expr, lo, hi)
            for agg in spec.aggregates
            if agg.expr
        }
        if spec.keys:
            inverse, n_groups, representatives = _group_index(
                [np.asarray(table[k][lo:hi]) for k in spec.keys]
            )
        else:
            inverse, n_groups = np.zeros(hi - lo, dtype=np.int64), 1
            representatives = []
        for g in range(n_groups):
            member = inverse == g
            partition_id_list.append(p)
            for key_name, values in zip(spec.keys, representatives):
                key_lists[key_name].append(values[g])
            for agg in sum_specs:
                units[agg.name].append(
                    ExactSum.of_array(expressions[agg.expr][member]).units
                )
            for agg in other_specs:
                if agg.kind == "count":
                    plain_lists[agg.name].append(int(member.sum()))
                elif agg.kind == "min":
                    plain_lists[agg.name].append(float(expressions[agg.expr][member].min()))
                else:
                    plain_lists[agg.name].append(float(expressions[agg.expr][member].max()))

    sum_signs: dict[str, np.ndarray] = {}
    sum_magnitudes: dict[str, np.ndarray] = {}
    sum_widths: dict[str, int] = {}
    for agg in sum_specs:
        signs, magnitudes, width = encode_units(units[agg.name])
        sum_signs[agg.name] = signs
        sum_magnitudes[agg.name] = magnitudes
        sum_widths[agg.name] = width
    plain: dict[str, np.ndarray] = {}
    for agg in other_specs:
        dtype = np.int64 if agg.kind == "count" else np.float64
        plain[agg.name] = np.asarray(plain_lists[agg.name], dtype=dtype)
    key_columns = {
        k: np.asarray(values) for k, values in key_lists.items()
    }
    return RollupTable(
        name=spec.name,
        base_table=spec.table,
        keys=spec.keys,
        partition_column=partition_column,
        n_partitions=n_partitions,
        source_rows=table.n_rows,
        partition_ids=np.asarray(partition_id_list, dtype=np.int64),
        key_columns=key_columns,
        aggregates=spec.aggregates,
        sum_signs=sum_signs,
        sum_magnitudes=sum_magnitudes,
        sum_widths=sum_widths,
        plain=plain,
    )


def build_and_attach(db, spec: RollupSpec | None = None) -> RollupTable:
    """Build a rollup and register it in the database catalog."""
    rollup = build_rollup(db, spec or default_lineitem_spec())
    db.add_rollup(rollup)
    return rollup
