"""Subsumption matching and query routing onto materialized rollups.

Given a bound engine call, the router decides whether an attached
rollup *subsumes* it -- the query's GROUP BY keys are a subset of the
rollup's keys, every aggregate it needs is stored as an exact partial,
and every WHERE conjunct is *partition-decidable* (each non-empty
partition either passes the predicate entirely or fails it entirely,
proven from the partitioning's min/max statistics).  When all three
hold the query is answered from the rollup's pre-aggregated partials:
unit counts add exactly across the included (partition, group) cells
and round once, so the value is bit-identical to the base-table scan.

Fallbacks are first-class: any miss (unsupported method, keys not
subsumed, a partition the statistics cannot decide, an engine whose
finisher re-derives the value from base data) returns no result plus a
reason string, and the caller runs the normal path.  The value shapes
this router reproduces were pinned per engine:

* ``run_projection`` / ``run_groupby`` reduce to one exact global sum
  on all four engines;
* ``run_q1`` decomposes on Typer and Tectorwise (four exact sums plus a
  group count).  The interpreter engines' ``_finish_q1`` recomputes a
  per-group reference dict from the base table with numpy pairwise
  summation -- order-dependent, hence not reproducible from partials --
  so DBMS R / DBMS C fall back on Q1 by design.

Routing is toggled with ``REPRO_ROLLUPS`` (on by default) and keyed
into the execution cache, so flipping it can never serve stale results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.exactsum import ExactSum
from repro.core.pruning import PredicateAtom
from repro.storage.zonemap import ALL_FALSE, ALL_TRUE

_OFF_VALUES = {"0", "false", "no", "off"}

#: Base-table columns each routable method would stream, for the
#: avoided-traffic accounting in decisions and stats.
_BASE_SCAN_COLUMNS = {
    "run_groupby": ("l_partkey", "l_returnflag", "l_extendedprice"),
    "run_q1": (
        "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax",
    ),
}


def rollups_enabled() -> bool:
    """Rollup routing toggle (``REPRO_ROLLUPS``, on by default)."""
    return os.environ.get("REPRO_ROLLUPS", "1").strip().lower() not in _OFF_VALUES


def has_rollups(db) -> bool:
    return bool(getattr(db, "rollup_names", ()))


@dataclass(frozen=True)
class QueryProfile:
    """What a bound call needs from a rollup: group keys, sum
    expressions (in assembly order), WHERE atoms, and whether the value
    includes a distinct-group count."""

    method: str
    keys: tuple[str, ...]
    expressions: tuple[str, ...]
    atoms: tuple[PredicateAtom, ...]
    needs_groups: bool
    hpe_only: bool


def profile_for(method: str, kwargs) -> QueryProfile | None:
    """The rollup profile of a bound call, or None when the method's
    value cannot be assembled from partials (unsupported method, morsel
    sub-range, SIMD variants)."""
    from repro.tpch import schema as sc

    kwargs = dict(kwargs)
    if kwargs.get("row_range") is not None or kwargs.get("simd"):
        return None
    if method == "run_projection":
        degree = kwargs.get("degree")
        if degree is None or not 1 <= int(degree) <= 4:
            return None
        return QueryProfile(
            method, (), (f"proj:{int(degree)}",), (), False, False
        )
    if method == "run_groupby":
        return QueryProfile(method, (), ("proj:1",), (), False, False)
    if method == "run_q1":
        atom = PredicateAtom("l_shipdate", "le", float(sc.DATE_1998_09_02))
        return QueryProfile(
            method,
            ("l_returnflag", "l_linestatus"),
            ("col:l_quantity", "proj:1", "disc_price", "charge"),
            (atom,),
            True,
            True,
        )
    return None


def _match(db, rollup, profile: QueryProfile):
    """Included-partition mask when the rollup subsumes the profile,
    else a fallback reason string."""
    if not set(profile.keys) <= set(rollup.keys):
        return "keys-not-subsumed"
    for expr in profile.expressions:
        if rollup.aggregate_named("sum", expr) is None:
            return "aggregate-missing"
    if profile.needs_groups and rollup.aggregate_named("count") is None:
        return "count-missing"
    if not profile.atoms:
        return np.ones(rollup.n_partitions, dtype=bool)
    if rollup.partition_column is None:
        return "unpartitioned"
    partitioning = getattr(db.table(rollup.base_table), "partitioning", None)
    if partitioning is None or partitioning.column != rollup.partition_column:
        return "partitioning-missing"
    if any(atom.column != partitioning.column for atom in profile.atoms):
        return "predicate-not-partition-aligned"
    counts = partitioning.row_counts
    include = np.ones(partitioning.n_partitions, dtype=bool)
    exclude = np.zeros(partitioning.n_partitions, dtype=bool)
    for atom in profile.atoms:
        verdicts = partitioning.verdicts(atom.op, atom.threshold)
        include &= verdicts == ALL_TRUE
        exclude |= verdicts == ALL_FALSE
    undecided = ~include & ~exclude & (counts > 0)
    if undecided.any():
        return "partition-straddle"
    return include


def _assemble(engine, db, rollup, profile: QueryProfile, included, kwargs):
    """The routed :class:`QueryResult`: exact partial merge + an honest
    (rollup-sized) work profile."""
    from repro.engines.base import QueryResult

    kwargs = dict(kwargs)
    selected = np.flatnonzero(included[rollup.partition_ids])
    agg_names = tuple(
        rollup.aggregate_named("sum", expr).name for expr in profile.expressions
    )
    details: dict = {}
    if profile.method == "run_projection":
        degree = int(kwargs["degree"])
        label = f"projection-p{degree}"
        value = ExactSum(rollup.sum_units(agg_names[0], selected)).total()
    elif profile.method == "run_groupby":
        label = "groupby-micro"
        value = ExactSum(rollup.sum_units(agg_names[0], selected)).total()
    else:  # run_q1
        label = "Q1"
        totals = [
            ExactSum(rollup.sum_units(name, selected)).total()
            for name in agg_names
        ]
        flags = rollup.key_columns["l_returnflag"][selected]
        status = rollup.key_columns["l_linestatus"][selected]
        group_key = flags.astype(np.int64) * 2 + status.astype(np.int64)
        groups = int(len(np.unique(group_key)))
        value = {
            "sum_qty": totals[0],
            "sum_base_price": totals[1],
            "sum_disc_price": totals[2],
            "sum_charge": totals[3],
            "groups": groups,
        }
        details["groups"] = groups
        agg_names = agg_names + (rollup.aggregate_named("count").name,)

    n_read = len(selected)
    work = engine._new_work()
    # A rollup scan is a tight decode-and-accumulate loop over n_read
    # tiny rows; the traffic is the rollup bytes actually touched.
    work.record_work(
        instructions=8.0 * n_read, alu=4.0 * n_read, loads=2.0 * n_read,
        chain=float(n_read),
    )
    work.record_sequential_read(float(rollup.row_bytes(agg_names) * n_read))
    work = engine._finalize_profile(work)
    return QueryResult(label, value, n_read, work, details)


def route(db, engine, method: str, kwargs):
    """Try to answer one bound call from an attached rollup.

    Returns ``(result, decision)``; ``result`` is None on fallback and
    ``decision`` always records the outcome and reason.
    """
    decision = {
        "rollup_used": False,
        "reason": "no-rollup",
        "rollup": None,
        "rows_read": 0,
        "base_rows_avoided": 0,
        "bytes_read": 0,
        "base_bytes_avoided": 0,
    }
    kwargs = dict(kwargs)
    profile = profile_for(method, kwargs)
    if profile is None:
        decision["reason"] = "unsupported-method"
        return None, decision
    if profile.hpe_only:
        from repro.engines.interpreter import InterpreterEngine

        if isinstance(engine, InterpreterEngine):
            decision["reason"] = "engine-finisher-not-decomposable"
            return None, decision
    names = getattr(db, "rollup_names", ())
    if not names:
        return None, decision
    reason = "no-matching-rollup"
    for name in names:
        rollup = db.rollup(name)
        matched = _match(db, rollup, profile)
        if isinstance(matched, str):
            reason = matched
            continue
        result = _assemble(engine, db, rollup, profile, matched, kwargs)
        table = db.table(rollup.base_table)
        scan_columns = _BASE_SCAN_COLUMNS.get(method)
        if scan_columns is None:  # projection: the first `degree` columns
            from repro.tpch.schema import PROJECTION_COLUMNS

            scan_columns = PROJECTION_COLUMNS[: int(kwargs.get("degree", 4))]
        decision.update(
            rollup_used=True,
            reason="routed",
            rollup=rollup.name,
            partitions_included=int(matched.sum()),
            partitions_total=int(rollup.n_partitions),
            rows_read=int(result.tuples),
            base_rows_avoided=int(table.n_rows),
            bytes_read=int(result.work.seq_read_bytes),
            base_bytes_avoided=int(table.bytes_for(scan_columns)),
        )
        return result, decision
    decision["reason"] = reason
    return None, decision


def attempt(db, engine, method: str, kwargs, executor: str):
    """Route with a ``route`` span, used by both executors.

    Returns ``(None, None)`` without emitting a span when routing is
    inactive (toggle off, or the database has no rollups) so span trees
    of rollup-free databases are unchanged.  Otherwise emits one
    ``route`` span with ``rollup_used``/``reason`` attributes and, on a
    hit, returns the routed result with the decision in
    ``details["rollup"]``.
    """
    if not rollups_enabled() or not has_rollups(db):
        return None, None
    from repro.obs import trace

    with trace.span("route", executor=executor):
        result, decision = route(db, engine, method, kwargs)
        trace.annotate(
            rollup_used=decision["rollup_used"], reason=decision["reason"]
        )
    if result is not None:
        result.details["rollup"] = decision
    return result, decision
