"""Materialized rollups and partitioned tables (see DESIGN §2b.7).

The subsystem sits between storage and planning: declarative range
partitioning clusters a table into contiguous partitions with min/max
statistics (:mod:`repro.rollup.partition`), rollup tables materialize
exactly mergeable pre-aggregated partials per (partition, group)
(:mod:`repro.rollup.table`, :mod:`repro.rollup.build`), and a router
substitutes a rollup scan for a base-table scan whenever the query is
subsumed (:mod:`repro.rollup.router`) -- falling back otherwise, with
bit-identical values either way.
"""

from repro.rollup.build import (
    DEFAULT_AGGREGATES,
    RollupSpec,
    build_and_attach,
    build_rollup,
    default_lineitem_spec,
    evaluate_expression,
)
from repro.rollup.partition import (
    PartitionSpec,
    Partitioning,
    build_partitioning,
    partitioned_database,
)
from repro.rollup.router import (
    QueryProfile,
    attempt,
    has_rollups,
    profile_for,
    rollups_enabled,
    route,
)
from repro.rollup.table import AggregateSpec, RollupTable

__all__ = [
    "AggregateSpec",
    "DEFAULT_AGGREGATES",
    "PartitionSpec",
    "Partitioning",
    "QueryProfile",
    "RollupSpec",
    "RollupTable",
    "attempt",
    "build_and_attach",
    "build_partitioning",
    "build_rollup",
    "default_lineitem_spec",
    "evaluate_expression",
    "has_rollups",
    "partitioned_database",
    "profile_for",
    "rollups_enabled",
    "route",
]
