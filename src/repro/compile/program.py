"""Logical plan -> fused vectorized kernel program.

Compilation (:func:`compiled_program`, memoized per process) analyses a
typed plan from :mod:`repro.sql.planner` into a straight-line program:

1. **Driving scan** -- the largest scanned table (by schema base
   cardinality) streams through the pipeline morsel by morsel; its
   local predicates are evaluated with the code-domain / prune-aware
   :func:`repro.engines.scan.predicate_mask` kernels and fused into one
   selection vector.  No intermediate column is ever materialised.
2. **Hash joins** -- every other table becomes a build side: local
   filters applied over the full table once per process
   (:func:`repro.engines.morsel.shared_structure`), keys hashed into a
   :class:`repro.engines.hashtable.ChainedHashTable`.  Probe order is a
   BFS over the join graph from the driving table, so a probe key may
   be a driving column or a column gathered from an earlier build side;
   two join pairs into one table fuse into a composite key.  Join pairs
   left over after the spanning traversal become residual equality
   kernels on the selection vector.
3. **Aggregation** -- SUM/AVG accumulate :class:`ExactSum` units and
   COUNT accumulates integers per group, so morsel partials merge
   *exactly* (units are exact per element, so any partitioning of the
   rows sums to identical units) and every engine/executor combination
   rounds once to the same float64.  Grouping is sort-based
   (``np.lexsort``) into a string-keyed state dict that
   :func:`repro.engines.morsel.merge_states` folds across morsels.
4. **Finish** -- HAVING, output expressions over the exact slot totals,
   ORDER BY with a deterministic group-key tiebreak, LIMIT.

Work recording follows the engine-wide morsel contract: stream names
and order are fixed by the program (never by the data), global build
costs are recorded by the lead morsel only, random patterns carry
morsel-invariant working sets, and per-element costs are dyadic so no
:attr:`PENDING_RATES` resolution is needed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.compile import CompileError
from repro.compile.expr import ScalarKernel, compile_scalar
from repro.core.exactsum import ExactSum
from repro.engines.hashtable import HEAD_BYTES, ChainedHashTable
from repro.engines.morsel import (
    bytes_for_rows,
    gather_lines,
    resolve_range,
    shared_structure,
)
from repro.engines.scan import (
    AGG_STATE_KEY,
    decision_details,
    exact_sum_column,
    predicate_mask,
    record_encoded_agg,
)
from repro.obs import trace
from repro.sql import plan as ir
from repro.tpch import schema as sc

# Per-element instruction costs of the fused kernels (dyadic, so morsel
# merging reproduces single-shot totals bit-for-bit without deferral).
FILTER_INSTRS = 3.0
HASH_INSTRS = 3.0
VISIT_INSTRS = 2.0
AGG_INSTRS = 4.0
GROUP_INSTRS = 6.0

#: IR comparison -> :func:`predicate_mask` op (``<>`` is mask-inverted).
_SCAN_OPS = {"<=": "le", "<": "lt", ">=": "ge", ">": "gt", "=": "eq"}

_NUMPY_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "<>": np.not_equal,
}

#: Single-column unique keys the schema guarantees; a build side keyed
#: by (or composite-keyed including) one of these provably satisfies
#: the hash table's unique-build-keys contract.
PRIMARY_KEYS = {
    "nation": "n_nationkey",
    "region": "r_regionkey",
    "supplier": "s_suppkey",
    "part": "p_partkey",
    "customer": "c_custkey",
    "orders": "o_orderkey",
}

#: Jointly-unique composite keys (TPC-H: one partsupp row per pair).
COMPOSITE_KEYS = {"partsupp": frozenset(("ps_partkey", "ps_suppkey"))}

#: Dictionary-encoded columns whose stored integer codes decode to the
#: TPC-H string values at *output* time only (HAVING/ORDER-BY group
#: state keeps the codes, matching how the planner rewrites string
#: literals into codes on the way in).
_DISPLAY_DECODE = {
    ("nation", "n_name"): tuple(sc.NATION_NAMES),
    ("region", "r_name"): tuple(sc.REGION_NAMES),
    ("lineitem", "l_returnflag"): tuple(
        flag for flag, _ in sorted(sc.RETURNFLAG_CODES.items(), key=lambda kv: kv[1])
    ),
    ("lineitem", "l_linestatus"): tuple(
        flag for flag, _ in sorted(sc.LINESTATUS_CODES.items(), key=lambda kv: kv[1])
    ),
}


@dataclass(frozen=True)
class LocalFilter:
    """One single-table predicate: ``column <op> value`` or
    ``column <op> other`` (same-table column comparison)."""

    column: str
    op: str
    value: float | None = None
    other: str | None = None


@dataclass(frozen=True)
class BuildSpec:
    """A hash-build side: filtered table, key columns (unique-first),
    and the payload columns later stages gather from matched rows."""

    table: str
    keys: tuple[str, ...]
    filters: tuple[LocalFilter, ...]
    payload: tuple[str, ...]


@dataclass(frozen=True)
class ProbeStep:
    """Probe one build side; ``sources`` name the per-key probe values
    ((table, column), resolvable from the driving table or an
    earlier-probed build side)."""

    build: BuildSpec
    sources: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Residual:
    """A join pair not used by the spanning probe order; evaluated as
    an equality kernel once both sides are available."""

    left: tuple[str, str]
    right: tuple[str, str]


@dataclass(frozen=True)
class AggSlot:
    """One accumulated quantity: an exact SUM (``ExactSum``) or a COUNT
    (int).  AVG is a sum slot plus the shared count slot."""

    name: str
    func: str  # "sum" | "count"
    kernel: ScalarKernel | None = None
    column: str | None = None  # bare driving-table column, when it is one


@dataclass(frozen=True)
class KernelProgram:
    """The compiled, immutable form of one logical plan."""

    plan: ir.PlanNode
    driving: str
    filters: tuple[LocalFilter, ...]
    steps: tuple[ProbeStep, ...]
    residuals: tuple[Residual, ...]
    group_refs: tuple[tuple[str, str], ...]
    slots: tuple[AggSlot, ...]
    outputs: tuple[ir.NamedExpr, ...]
    having: ir.Compare | None
    order: tuple[tuple[str, bool], ...]
    limit: int | None
    workload: str = field(compare=False, default="compiled")

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Plain-data summary for details/explain/tour surfaces."""
        return {
            "driving": self.driving,
            "filters": len(self.filters),
            "joins": [
                {
                    "table": step.build.table,
                    "keys": list(step.build.keys),
                    "build_filters": len(step.build.filters),
                }
                for step in self.steps
            ],
            "residuals": len(self.residuals),
            "group_by": [f"{t}.{c}" for t, c in self.group_refs],
            "aggregates": [
                {"slot": s.name, "func": s.func} for s in self.slots
            ],
            "order_by": [
                f"{name} {'desc' if desc else 'asc'}" for name, desc in self.order
            ],
            "limit": self.limit,
        }

    # ------------------------------------------------------------------
    # Morsel execution
    # ------------------------------------------------------------------
    def execute(self, engine, db, row_range):
        """Run the kernel sequence over one morsel; returns the exactly
        mergeable ``(state, tuples, work)`` triple."""
        driving = db.table(self.driving)
        lo, hi = resolve_range(row_range, driving.n_rows)
        m = hi - lo
        lead = lo == 0
        work = engine._new_work()

        # -- driving-table filters: full-vector masks, fused select --
        mask = None
        for i, flt in enumerate(self.filters):
            work.record_sequential_read(bytes_for_rows(driving, [flt.column], lo, hi))
            if flt.other is None:
                part = _const_mask(driving, flt, lo, hi)
            else:
                work.record_sequential_read(
                    bytes_for_rows(driving, [flt.other], lo, hi)
                )
                part = _NUMPY_OPS[flt.op](
                    driving[flt.column][lo:hi], driving[flt.other][lo:hi]
                )
            work.record_work(instructions=m * FILTER_INSTRS, alu=m, loads=m)
            taken = float(part.mean()) if m else 0.0
            work.record_branch_stream(
                f"filter {self.driving}.{flt.column}#{i}", m, taken
            )
            mask = part if mask is None else mask & part
        sel = np.flatnonzero(mask) if mask is not None else np.arange(m)

        # -- probes (selection vector threaded through) --
        builds: dict[str, dict] = {}
        matches: dict[str, np.ndarray] = {}
        fetched_site: dict[tuple, np.ndarray] = {}

        def fetch(table, column, site):
            """Column values over the current selection, recorded once
            per (program site, column)."""
            cache_key = (site, table, column)
            hit = fetched_site.get(cache_key)
            if hit is not None:
                return hit
            if table == self.driving:
                values = driving[column][lo:hi][sel]
                touched, total = gather_lines(sel + lo, lo, hi)
                work.record_gather(
                    f"gather {table}.{column}@{site}",
                    bytes_for_rows(driving, [column], lo, hi),
                    touched,
                    total,
                )
            else:
                build = builds[table]
                work.record_random(
                    f"gather {table}.{column}@{site}",
                    len(sel),
                    build["payload_bytes"],
                )
                work.record_work(instructions=len(sel) * 1.0, loads=len(sel))
                values = build["values"][column][matches[table]]
            fetched_site[cache_key] = values
            return values

        for idx, step in enumerate(self.steps):
            spec = step.build
            build = shared_structure(
                db, ("compile", step), lambda s=step: _build_side(db, s)
            )
            builds[spec.table] = build
            _record_build(work, build, spec, lead)

            site = f"probe{idx}"
            sources = [
                np.asarray(fetch(t, c, f"{site}k{j}"))
                for j, (t, c) in enumerate(step.sources)
            ]
            n_probe = len(sel)
            probe_keys, valid = _probe_keys(sources, build)
            ws = build["working_set"]
            work.record_work(
                instructions=n_probe * HASH_INSTRS, hash_ops=n_probe,
                alu=n_probe, loads=n_probe,
            )
            work.record_random(f"probe {spec.table} heads", n_probe, ws)
            table_struct = build["table"]
            if table_struct is None:
                found = np.zeros(n_probe, dtype=bool)
                match = np.empty(0, dtype=np.int64)
                work.record_random(f"probe {spec.table} chain", 0, ws, dependent=True)
                work.record_branch_stream(f"probe {spec.table} hit", n_probe, 0.0)
            else:
                result = table_struct.probe(probe_keys)
                found = result.found if valid is None else result.found & valid
                work.record_work(
                    instructions=result.comparisons * VISIT_INSTRS,
                    alu=result.comparisons, loads=result.comparisons,
                )
                work.record_random(
                    f"probe {spec.table} chain", result.extra_walk, ws,
                    dependent=True,
                )
                work.record_branch_outcomes(f"probe {spec.table} hit", found)
                match = result.match_index[found]
            sel = sel[found]
            for name in matches:
                matches[name] = matches[name][found]
            matches[spec.table] = match
            fetched_site.clear()

        # -- residual equality pairs --
        for idx, residual in enumerate(self.residuals):
            site = f"residual{idx}"
            left = fetch(*residual.left, f"{site}l")
            right = fetch(*residual.right, f"{site}r")
            keep = np.asarray(left) == np.asarray(right)
            n_check = len(sel)
            work.record_work(instructions=n_check * 1.0, alu=n_check)
            work.record_branch_outcomes(
                f"residual {residual.left[1]}={residual.right[1]}", keep
            )
            sel = sel[keep]
            for name in matches:
                matches[name] = matches[name][keep]
            fetched_site.clear()

        # -- aggregation --
        n_final = len(sel)
        key_arrays = [
            np.asarray(fetch(t, c, f"key{j}"))
            for j, (t, c) in enumerate(self.group_refs)
        ]
        slot_values: dict[str, np.ndarray] = {}
        decisions = []
        for si, slot in enumerate(self.slots):
            if slot.func == "count":
                decisions.append((slot.name, None, "counted", "row-count"))
                continue
            if (
                slot.column is not None
                and not self.steps
                and not self.residuals
                and not self.group_refs
            ):
                # Bare driving-column global sum: the code-domain
                # morph kernels apply directly over the filter mask.
                total, mode, why = exact_sum_column(
                    driving, slot.column, lo, hi, selected=mask
                )
                slot_values[slot.name] = total
                decisions.append((slot.name, slot.column, mode, why))
                work.record_work(instructions=m * AGG_INSTRS, alu=m, loads=m)
                continue
            kernel = slot.kernel
            values = kernel.evaluate(
                lambda t, c, s=si: fetch(t, c, f"agg{s}"), n_final
            )
            values = np.asarray(values)
            if values.dtype != np.float64:
                values = values.astype(np.float64)
            slot_values[slot.name] = values
            cost = n_final * AGG_INSTRS * max(1, kernel.nodes)
            work.record_work(instructions=cost, alu=cost / 2.0, loads=n_final)
            decisions.append((slot.name, slot.column, "decoded", _decode_why(self)))

        work.record_work(
            instructions=n_final * GROUP_INSTRS, hash_ops=n_final,
            stores=n_final, alu=n_final,
        )
        groups: dict[str, dict] = {}
        if self.group_refs:
            if n_final:
                order = np.lexsort(tuple(reversed(key_arrays)))
                sorted_keys = [k[order] for k in key_arrays]
                change = np.zeros(n_final, dtype=bool)
                change[0] = True
                for k in sorted_keys:
                    change[1:] |= k[1:] != k[:-1]
                starts = np.flatnonzero(change)
                ends = np.append(starts[1:], n_final)
                for start, end in zip(starts, ends):
                    key = tuple(_pyval(k[start]) for k in sorted_keys)
                    rows = order[start:end]
                    group = {"const_key": key}
                    for slot in self.slots:
                        if slot.func == "count":
                            group[slot.name] = int(end - start)
                        else:
                            group[slot.name] = ExactSum.of_array(
                                slot_values[slot.name][rows]
                            )
                    groups[repr(key)] = group
        else:
            group = {"const_key": ()}
            for slot in self.slots:
                if slot.func == "count":
                    group[slot.name] = n_final
                else:
                    accumulated = slot_values[slot.name]
                    if not isinstance(accumulated, ExactSum):
                        accumulated = ExactSum.of_array(accumulated)
                    group[slot.name] = accumulated
            groups["()"] = group

        state = {
            "groups": groups,
            "candidates": n_final,
            AGG_STATE_KEY: tuple(decisions),
        }
        return state, m, work

    # ------------------------------------------------------------------
    # Finisher (single-shot and merge paths share it)
    # ------------------------------------------------------------------
    def finish(self, engine, db, merged):
        from repro.engines.base import QueryResult

        work = engine._finalize_profile(merged.work)
        state = merged.state
        decision = state.get(AGG_STATE_KEY) or ()
        record_encoded_agg(decision)
        names = [out.name for out in self.outputs]

        entries = []
        for group in state.get("groups", {}).values():
            key = group["const_key"]
            key_values = dict(zip(self.group_refs, key))
            if self.having is not None and not self._predicate_value(
                self.having, group, key_values
            ):
                continue
            row = [
                self._display_value(out.expr, group, key_values)
                for out in self.outputs
            ]
            entries.append((key, row, group))
        entries.sort(key=lambda entry: entry[0])

        exact_totals: dict[str, object] = {}
        for slot in self.slots:
            if slot.func == "count":
                exact_totals[slot.name] = sum(
                    group[slot.name] for _, _, group in entries
                )
            else:
                exact_totals[slot.name] = sum(
                    group[slot.name].units for _, _, group in entries
                )

        for name, descending in reversed(self.order):
            index = names.index(name)
            entries.sort(key=lambda entry: entry[1][index], reverse=descending)
        included = len(entries)
        if self.limit is not None:
            entries = entries[: self.limit]

        value = {"columns": names, "rows": [row for _, row, _ in entries]}
        details = {
            "compiled": self.describe(),
            "groups": included,
            "candidates": state.get("candidates", 0),
            "exact_totals": exact_totals,
        }
        encoded = decision_details(decision)
        if encoded is not None:
            details["encoded_agg"] = encoded
        if merged.operators is not None:
            details["operators"] = merged.operators
        return QueryResult(self.workload, value, merged.tuples, work, details)

    def _display_value(self, expr, group, key_values):
        """An output cell: :meth:`_finish_value`, with dictionary codes
        decoded to their strings for bare name-column outputs."""
        value = self._finish_value(expr, group, key_values)
        if isinstance(expr, ir.ColumnExpr):
            names = _DISPLAY_DECODE.get((expr.ref.table, expr.ref.column))
            if names is not None and isinstance(value, int) and 0 <= value < len(names):
                return names[value]
        return value

    def _finish_value(self, expr, group, key_values):
        if isinstance(expr, ir.ConstExpr):
            return expr.value
        if isinstance(expr, ir.ColumnExpr):
            return key_values[(expr.ref.table, expr.ref.column)]
        if isinstance(expr, ir.Arith):
            left = self._finish_value(expr.left, group, key_values)
            right = self._finish_value(expr.right, group, key_values)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right if right else float("nan")
        if isinstance(expr, ir.AggCall):
            if expr.func == "count":
                return group[self._slot_of(expr).name]
            if expr.func == "avg":
                total = group[self._slot_of(expr, "sum").name].total()
                count = group[self._slot_of(expr, "count").name]
                return total / count if count else float("nan")
            return group[self._slot_of(expr).name].total()
        raise CompileError(f"unsupported output expression {type(expr).__name__}")

    def _slot_of(self, agg: ir.AggCall, role: str | None = None) -> AggSlot:
        name = _slot_key(agg, role)
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(name)

    def _predicate_value(self, compare: ir.Compare, group, key_values) -> bool:
        left = self._finish_value(compare.left, group, key_values)
        right = self._finish_value(compare.right, group, key_values)
        return {
            "=": left == right,
            "<>": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[compare.op]


# ----------------------------------------------------------------------
# Runtime kernels
# ----------------------------------------------------------------------


def _const_mask(table, flt: LocalFilter, lo: int, hi: int) -> np.ndarray:
    if flt.op == "<>":
        return ~predicate_mask(table, flt.column, "eq", flt.value, lo, hi)
    return predicate_mask(table, flt.column, _SCAN_OPS[flt.op], flt.value, lo, hi)


def _build_side(db, step: ProbeStep) -> dict:
    """Build one filtered hash side over the full table (shared across
    morsels/executions via :func:`shared_structure`)."""
    spec = step.build
    table = db.table(spec.table)
    n = table.n_rows
    mask = None
    for flt in spec.filters:
        if flt.other is None:
            part = _const_mask(table, flt, 0, n)
        else:
            part = _NUMPY_OPS[flt.op](table[flt.column][:], table[flt.other][:])
        mask = part if mask is None else mask & part
    rows = np.flatnonzero(mask) if mask is not None else np.arange(n)
    columns = tuple(dict.fromkeys(spec.keys + spec.payload))
    values = {c: np.ascontiguousarray(np.asarray(table[c])[rows]) for c in columns}
    payload_bytes = float(max(len(rows), 1) * 8)
    if not len(rows):
        return {
            "table": None, "values": values, "n_rows": n, "n_selected": 0,
            "working_set": float(HEAD_BYTES), "payload_bytes": payload_bytes,
            "min2": 0, "span": 0,
        }
    if len(spec.keys) == 1:
        keys = values[spec.keys[0]].astype(np.int64, copy=False)
        min2, span = 0, 0
    else:
        k1 = values[spec.keys[0]].astype(np.int64, copy=False)
        k2 = values[spec.keys[1]].astype(np.int64, copy=False)
        min2 = int(k2.min())
        span = int(k2.max()) - min2 + 1
        keys = k1 * span + (k2 - min2)
    hashtable = ChainedHashTable(keys)
    return {
        "table": hashtable, "values": values, "n_rows": n,
        "n_selected": int(len(rows)),
        "working_set": float(hashtable.working_set_bytes),
        "payload_bytes": payload_bytes, "min2": min2, "span": span,
    }


def _probe_keys(sources, build):
    """(int64 probe keys, validity mask or None) for one probe step."""
    first = np.asarray(sources[0]).astype(np.int64, copy=False)
    if len(sources) == 1:
        return first, None
    second = np.asarray(sources[1]).astype(np.int64, copy=False)
    span, min2 = build["span"], build["min2"]
    if not span:
        return first, np.zeros(len(first), dtype=bool)
    valid = (second >= min2) & (second < min2 + span)
    return first * span + np.where(valid, second - min2, 0), valid


def _record_build(work, build, spec: BuildSpec, lead: bool) -> None:
    """Global build cost, recorded in full by the lead morsel and as
    zero-count placeholders elsewhere (the engine-wide convention)."""
    n_rows = build["n_rows"] if lead else 0
    n_keys = build["n_selected"] if lead else 0
    columns = len(dict.fromkeys(spec.keys + spec.payload)) + len(spec.filters)
    work.record_sequential_read(float(n_rows * 8 * max(1, columns)))
    scan_cost = n_rows * (FILTER_INSTRS if spec.filters else 1.0)
    work.record_work(instructions=scan_cost, alu=n_rows, loads=n_rows)
    work.record_work(
        instructions=n_keys * HASH_INSTRS, hash_ops=n_keys, stores=n_keys
    )
    work.record_random(
        f"build {spec.table} scatter", n_keys, build["working_set"]
    )


def _pyval(value):
    value = value.item() if hasattr(value, "item") else value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _decode_why(program: KernelProgram) -> str:
    if program.steps or program.residuals:
        return "post-join"
    if program.group_refs:
        return "grouped-expression"
    return "derived-expression"


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


def _slot_key(agg: ir.AggCall, role: str | None = None) -> str:
    func = agg.func
    if role is not None:
        func = role
    if func == "count" or agg.arg is None:
        return "count:*" if agg.arg is None else f"count:{agg.arg}"
    return f"{func}:{agg.arg}"


class _Compiler:
    def __init__(self, plan: ir.PlanNode):
        self.plan = plan
        self.tables: list[str] = []
        self.filters: dict[str, list[LocalFilter]] = {}
        self.pairs: list[tuple[ir.ColRef, ir.ColRef]] = []

    def compile(self) -> KernelProgram:
        node = self.plan
        limit = None
        order: tuple[tuple[str, bool], ...] = ()
        if isinstance(node, ir.Limit):
            limit = node.count
            node = node.child
        if isinstance(node, ir.OrderBy):
            order = node.keys
            node = node.child
        if isinstance(node, ir.Limit):
            limit = node.count if limit is None else limit
            node = node.child
        if isinstance(node, ir.Project):
            raise CompileError(
                "plain projections do not compile; only aggregate queries "
                "stream through the fused pipeline"
            )
        if not isinstance(node, ir.Aggregate):
            raise CompileError(
                f"unsupported plan root {type(node).__name__}"
            )

        self._collect(node.child)
        driving = max(self.tables, key=lambda t: sc.BASE_ROWS[t])
        steps, residuals = self._probe_order(driving)
        group_refs = tuple(
            (ref.table, ref.column) for ref in node.group_by
        )
        for table, _ in group_refs:
            self._check_available(table, driving, steps)
        slots = self._collect_slots(node, driving)
        self._validate_outputs(node, group_refs)
        for name, _ in order:
            if name not in {out.name for out in node.outputs}:
                raise CompileError(f"ORDER BY key {name!r} is not an output")

        label = f"compiled-{driving}"
        if steps:
            label += f"-{len(steps)}join"
        label += f"-g{len(group_refs)}" if group_refs else "-global"
        return KernelProgram(
            plan=self.plan,
            driving=driving,
            filters=tuple(self.filters.get(driving, ())),
            steps=steps,
            residuals=residuals,
            group_refs=group_refs,
            slots=slots,
            outputs=node.outputs,
            having=node.having,
            order=order,
            limit=limit,
            workload=label,
        )

    # -- plan walk -----------------------------------------------------
    def _collect(self, node: ir.PlanNode) -> None:
        if isinstance(node, ir.Join):
            self._collect(node.left)
            self._collect(node.right)
            self.pairs.extend(node.pairs)
            return
        if isinstance(node, ir.Filter):
            child = node.child
            if not isinstance(child, ir.Scan):
                raise CompileError("filters over derived tables do not compile")
            self._add_scan(child.table)
            for predicate in node.predicates:
                self.filters[child.table].append(
                    self._compile_filter(child.table, predicate)
                )
            return
        if isinstance(node, ir.Scan):
            self._add_scan(node.table)
            return
        if isinstance(node, ir.SubqueryScan):
            raise CompileError(
                f"derived table {node.alias!r} does not compile (no "
                "subquery pipeline)"
            )
        raise CompileError(f"unsupported plan node {type(node).__name__}")

    def _add_scan(self, table: str) -> None:
        if table not in sc.SCHEMAS:
            raise CompileError(f"unknown table {table!r}")
        if table in self.tables:
            raise CompileError(f"table {table!r} scanned twice (self joins do not compile)")
        self.tables.append(table)
        self.filters.setdefault(table, [])

    def _compile_filter(self, table: str, predicate) -> LocalFilter:
        if isinstance(predicate, ir.InSubquery):
            raise CompileError("IN (subquery) predicates do not compile")
        if not isinstance(predicate, ir.Compare):
            raise CompileError(
                f"unsupported predicate {type(predicate).__name__}"
            )
        if not isinstance(predicate.left, ir.ColumnExpr):
            raise CompileError("filters need a plain column on the left")
        column = predicate.left.ref.column
        if isinstance(predicate.right, ir.ConstExpr):
            if predicate.op != "<>" and predicate.op not in _SCAN_OPS:
                raise CompileError(f"unsupported filter operator {predicate.op!r}")
            return LocalFilter(
                column=column, op=predicate.op, value=predicate.right.value
            )
        if isinstance(predicate.right, ir.ColumnExpr):
            if predicate.op not in _NUMPY_OPS:
                raise CompileError(f"unsupported filter operator {predicate.op!r}")
            return LocalFilter(
                column=column, op=predicate.op,
                other=predicate.right.ref.column,
            )
        raise CompileError("filter comparands must be columns or constants")

    # -- join graph ----------------------------------------------------
    def _probe_order(self, driving: str):
        reachable = {driving}
        payload_needs: dict[str, set] = {t: set() for t in self.tables}
        pairs_left = list(self.pairs)
        steps_raw = []
        while len(reachable) < len(self.tables):
            progress = False
            for table in self.tables:
                if table in reachable:
                    continue
                connecting = [
                    pair for pair in pairs_left
                    if (pair[0].table == table and pair[1].table in reachable)
                    or (pair[1].table == table and pair[0].table in reachable)
                ]
                if not connecting:
                    continue
                if len(connecting) > 2:
                    raise CompileError(
                        f"more than two join keys into {table!r}"
                    )
                keys, sources = [], []
                for pair in connecting:
                    mine, other = (
                        (pair[0], pair[1]) if pair[0].table == table
                        else (pair[1], pair[0])
                    )
                    keys.append(mine.column)
                    sources.append((other.table, other.column))
                    pairs_left.remove(pair)
                keys, sources = self._orient_keys(table, keys, sources)
                steps_raw.append((table, tuple(keys), tuple(sources)))
                reachable.add(table)
                progress = True
                break
            if not progress:
                missing = sorted(set(self.tables) - reachable)
                raise CompileError(
                    f"tables {missing} are not connected to {driving!r} by "
                    "equi-join pairs"
                )

        residuals = []
        for pair in pairs_left:
            residuals.append(Residual(
                left=(pair[0].table, pair[0].column),
                right=(pair[1].table, pair[1].column),
            ))

        # Payload: every non-driving column any later stage touches.
        for table, _, sources in steps_raw:
            for src_table, src_column in sources:
                if src_table != driving:
                    payload_needs[src_table].add(src_column)
        for residual in residuals:
            for ref_table, ref_column in (residual.left, residual.right):
                if ref_table != driving:
                    payload_needs[ref_table].add(ref_column)
        node = self.plan
        while isinstance(node, (ir.Limit, ir.OrderBy)):
            node = node.child
        for ref_table, ref_column in _aggregate_refs(node):
            if ref_table != driving:
                payload_needs[ref_table].add(ref_column)

        steps = []
        for table, keys, sources in steps_raw:
            self._check_unique(table, keys)
            for key in keys:
                if sc.SCHEMAS[table].dtype_of(key) != np.dtype(np.int64):
                    raise CompileError(
                        f"join key {table}.{key} is not an integer column"
                    )
            steps.append(ProbeStep(
                build=BuildSpec(
                    table=table,
                    keys=keys,
                    filters=tuple(self.filters.get(table, ())),
                    payload=tuple(sorted(payload_needs[table])),
                ),
                sources=sources,
            ))
        # Probe sources must come from the driving table or an
        # *earlier* build side (BFS order guarantees reachability, this
        # asserts it).
        available = {driving}
        for step in steps:
            for src_table, _ in step.sources:
                if src_table not in available:
                    raise CompileError(
                        f"probe source table {src_table!r} not yet joined"
                    )
            available.add(step.build.table)
        for residual in residuals:
            for ref_table, _ in (residual.left, residual.right):
                if ref_table not in available:
                    raise CompileError(
                        f"residual join table {ref_table!r} not joined"
                    )
        return tuple(steps), tuple(residuals)

    def _orient_keys(self, table, keys, sources):
        """Put the provably-unique key first (composite builds multiply
        the unique key so the combined key stays unique)."""
        primary = PRIMARY_KEYS.get(table)
        if primary in keys and keys[0] != primary:
            i = keys.index(primary)
            keys[0], keys[i] = keys[i], keys[0]
            sources[0], sources[i] = sources[i], sources[0]
        return keys, sources

    def _check_unique(self, table, keys) -> None:
        primary = PRIMARY_KEYS.get(table)
        if primary in keys:
            return
        if set(keys) == COMPOSITE_KEYS.get(table, frozenset()):
            return
        raise CompileError(
            f"cannot prove build keys {keys!r} unique on {table!r} "
            "(hash build sides need a schema-unique key)"
        )

    def _check_available(self, table, driving, steps) -> None:
        if table == driving:
            return
        if any(step.build.table == table for step in steps):
            return
        raise CompileError(f"column source table {table!r} is not in the plan")

    # -- aggregation ---------------------------------------------------
    def _collect_slots(self, node: ir.Aggregate, driving: str):
        slots: dict[str, AggSlot] = {}

        def register(agg: ir.AggCall) -> None:
            if agg.func in ("sum", "avg"):
                if agg.arg is None:
                    raise CompileError(f"{agg.func.upper()}() needs an argument")
                key = _slot_key(agg, "sum")
                if key not in slots:
                    kernel = compile_scalar(agg.arg)
                    for table, _ in kernel.refs:
                        if table not in self.tables:
                            raise CompileError(
                                f"aggregate references unjoined table {table!r}"
                            )
                    column = None
                    if (
                        isinstance(agg.arg, ir.ColumnExpr)
                        and agg.arg.ref.table == driving
                    ):
                        column = agg.arg.ref.column
                    slots[key] = AggSlot(
                        name=key, func="sum", kernel=kernel, column=column
                    )
                if agg.func == "avg":
                    count_key = _slot_key(agg, "count")
                    slots.setdefault(
                        count_key, AggSlot(name=count_key, func="count")
                    )
            elif agg.func == "count":
                key = _slot_key(agg)
                slots.setdefault(key, AggSlot(name=key, func="count"))
            else:
                raise CompileError(
                    f"aggregate {agg.func.upper()}() has no compiled kernel"
                )

        def walk(expr) -> None:
            if isinstance(expr, ir.AggCall):
                register(expr)
            elif isinstance(expr, ir.Arith):
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, ir.YearOf):
                raise CompileError("EXTRACT(YEAR ...) has no compiled kernel")

        for out in node.outputs:
            walk(out.expr)
        if node.having is not None:
            walk(node.having.left)
            walk(node.having.right)
        if not slots:
            raise CompileError("aggregate query without compilable aggregates")
        # Kernel column availability check against the *real* steps is
        # done in _validate_outputs via _aggregate_refs/payload wiring.
        return tuple(slots.values())

    def _validate_outputs(self, node: ir.Aggregate, group_refs) -> None:
        group_set = set(group_refs)
        for out in node.outputs:
            self._validate_output_expr(out.expr, group_set)
        if node.having is not None:
            self._validate_output_expr(node.having.left, group_set)
            self._validate_output_expr(node.having.right, group_set)

    def _validate_output_expr(self, expr, group_set) -> None:
        if isinstance(expr, ir.ColumnExpr):
            if (expr.ref.table, expr.ref.column) not in group_set:
                raise CompileError(
                    f"output column {expr.ref} is not a GROUP BY key"
                )
            return
        if isinstance(expr, ir.Arith):
            self._validate_output_expr(expr.left, group_set)
            self._validate_output_expr(expr.right, group_set)
            return
        if isinstance(expr, (ir.ConstExpr, ir.AggCall)):
            return
        raise CompileError(
            f"unsupported output expression {type(expr).__name__}"
        )


def _aggregate_refs(node: ir.Aggregate):
    """Every (table, column) the aggregate layer reads: group keys plus
    aggregate-argument leaves (for build payload planning)."""
    refs = [(ref.table, ref.column) for ref in node.group_by]

    def walk(expr) -> None:
        if isinstance(expr, ir.ColumnExpr):
            refs.append((expr.ref.table, expr.ref.column))
        elif isinstance(expr, ir.Arith):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, ir.AggCall) and expr.arg is not None:
            walk(expr.arg)

    for out in node.outputs:
        walk(out.expr)
    if node.having is not None:
        walk(node.having.left)
        walk(node.having.right)
    return refs


# ----------------------------------------------------------------------
# Compiled-program cache (per process)
# ----------------------------------------------------------------------
_CACHE: dict[ir.PlanNode, KernelProgram] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_CAP = 128
_CACHE_STATS = {"hits": 0, "misses": 0}


def compiled_program(plan: ir.PlanNode) -> KernelProgram:
    """The compiled program for ``plan``, memoized per process.

    Compilation is pure plan analysis (no data access), so one cache
    entry serves every database, engine and executor.  A fresh compile
    emits a ``compile`` span.
    """
    with _CACHE_LOCK:
        program = _CACHE.get(plan)
        if program is not None:
            _CACHE_STATS["hits"] += 1
            return program
    with trace.span("compile"):
        program = _Compiler(plan).compile()
        trace.annotate(
            workload=program.workload,
            joins=len(program.steps),
            groups=len(program.group_refs),
        )
    with _CACHE_LOCK:
        existing = _CACHE.get(plan)
        if existing is not None:
            _CACHE_STATS["hits"] += 1
            return existing
        _CACHE_STATS["misses"] += 1
        _CACHE[plan] = program
        while len(_CACHE) > _CACHE_CAP:
            _CACHE.pop(next(iter(_CACHE)))
    return program


def execute_compiled(engine, db, plan: ir.PlanNode, row_range=None):
    """Entry point behind :meth:`Engine.run_compiled`.

    ``row_range=None`` runs the full driving table and finishes through
    the same merge finisher the parallel executor uses; a set range
    returns an exactly mergeable partial.
    """
    from repro.engines.base import MergedPartials

    program = compiled_program(plan)
    if row_range is not None:
        state, tuples, work = program.execute(engine, db, row_range)
        lo, hi = resolve_range(row_range, db.table(program.driving).n_rows)
        return engine._partial_result(
            program.workload, state, tuples, work, (lo, hi)
        )
    state, tuples, work = program.execute(engine, db, None)
    merged = MergedPartials(state=state, work=work, tuples=tuples)
    return program.finish(engine, db, merged)


def finish_compiled(engine, db, merged, plan: ir.PlanNode):
    """Merge finisher behind :meth:`Engine._finish_compiled`."""
    return compiled_program(plan).finish(engine, db, merged)


def compile_cache_stats() -> dict:
    with _CACHE_LOCK:
        return {"entries": len(_CACHE), **_CACHE_STATS}


def clear_compile_cache() -> None:
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0
