"""Per-query engine chooser: predict the cheapest route before running.

The paper's conclusion is that no single execution style wins every
query -- data-centric (Typer) code keeps intermediates in registers but
serialises on dependent probes, vector-at-a-time (Tectorwise) code
pays vector materialization for memory-level parallelism, and the fused
numpy kernel programs of :mod:`repro.compile` behave like a wide-vector
engine with full-column passes.  This module turns that observation
into a *decision procedure*: given a bound query, it synthesizes an
analytic :class:`~repro.core.workprofile.WorkProfile` for each
candidate route from sampled cardinalities, prices each profile with
the existing cycle/memory model
(:class:`~repro.core.profiler.MicroArchProfiler`), and records which
route the model predicts to be fastest.

The chooser is *advisory*: the serve layer attaches the decision to
``result.details["chooser"]`` so predictions can be validated against
measured latencies (see ``benchmarks/record_bench.py``), but it never
overrides the engine the caller asked for.

The synthetic profiles are estimates, not measurements -- they mirror
the recording formulas of the real executions (sequential column
passes, selection-vector gathers, hash-probe random streams) but run
no query code.  Cardinalities come from deterministic prefix samples,
so a decision is reproducible for a given database.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.compile import CompileError
from repro.compile.program import (
    AGG_INSTRS,
    FILTER_INSTRS,
    GROUP_INSTRS,
    HASH_INSTRS,
    VISIT_INSTRS,
    _NUMPY_OPS,
    KernelProgram,
    _const_mask,
    compiled_program,
)

#: Rows of the deterministic prefix sample used for selectivity and
#: group-cardinality estimates (64-aligned like everything else).
SAMPLE_ROWS = 65536

#: Bytes of one hash-table entry / bucket head, matching
#: :mod:`repro.engines.hashtable`.
_ENTRY_BYTES = 24
_HEAD_BYTES = 8

#: Code footprints of the candidate routes (the compiled route runs the
#: small kernel-program driver, not a full engine's operator library).
_FOOTPRINTS = {
    "Typer": 24 * 1024,
    "Tectorwise": 48 * 1024,
    "compiled": 16 * 1024,
}


class ChooserError(RuntimeError):
    """The chooser cannot model this bound query."""


# ----------------------------------------------------------------------
# Cardinality estimation
# ----------------------------------------------------------------------


def _sample_mask(table, filters, n_rows: int) -> tuple[np.ndarray, int]:
    """Conjunctive filter mask over the table's prefix sample."""
    sample = min(n_rows, SAMPLE_ROWS)
    if sample == 0:
        return np.zeros(0, dtype=bool), 0
    mask = np.ones(sample, dtype=bool)
    for flt in filters:
        if flt.other is not None:
            mask &= _NUMPY_OPS[flt.op](
                table[flt.column][:sample], table[flt.other][:sample]
            )
        else:
            mask &= _const_mask(table, flt, 0, sample)
    return mask, sample


def estimate_cardinalities(db, program: KernelProgram) -> dict:
    """Sampled row-count estimates for each stage of ``program``.

    Filter selectivity comes from evaluating the real predicates over a
    deterministic prefix sample of each table.  Join hit fractions use
    the foreign-key structure of the schema: an unfiltered build side
    matches every probe key, so the hit fraction is the build side's
    own filter selectivity (compounded down the probe chain).
    """
    driving = db.table(program.driving)
    n = driving.n_rows
    mask, sample = _sample_mask(driving, program.filters, n)
    selectivity = float(np.count_nonzero(mask)) / sample if sample else 0.0

    joins = []
    survivors = n * selectivity
    for step in program.steps:
        build_table = db.table(step.build.table)
        b_rows = build_table.n_rows
        b_mask, b_sample = _sample_mask(build_table, step.build.filters, b_rows)
        b_sel = float(np.count_nonzero(b_mask)) / b_sample if b_sample else 0.0
        kept = b_rows * b_sel
        payload_cols = max(1, len(step.build.payload))
        working_set = (
            kept * (_ENTRY_BYTES + 8.0 * payload_cols) + kept * _HEAD_BYTES
        )
        joins.append(
            {
                "table": step.build.table,
                "build_rows": int(round(kept)),
                "hit_fraction": b_sel,
                "working_set_bytes": float(working_set),
            }
        )
        survivors *= b_sel if b_sel > 0.0 else 0.0

    if program.group_refs:
        groups = 1.0
        for table_name, column in program.group_refs:
            table = db.table(table_name)
            rows = table.n_rows
            prefix = min(rows, SAMPLE_ROWS)
            distinct = (
                len(np.unique(table[column][:prefix])) if prefix else 1
            )
            groups *= max(1, distinct)
        groups = min(groups, max(1.0, survivors))
    else:
        groups = 1.0

    return {
        "driving": program.driving,
        "rows": int(n),
        "selectivity": selectivity,
        "survivors": float(survivors),
        "joins": joins,
        "groups": float(groups),
    }


# ----------------------------------------------------------------------
# Synthetic per-route profiles
# ----------------------------------------------------------------------


def _blank_profile(route: str):
    from repro.core.workprofile import WorkProfile

    return WorkProfile(code_footprint_bytes=_FOOTPRINTS[route])


def _synthesize(route: str, program: KernelProgram, est: dict):
    """An analytic WorkProfile for running ``program`` via ``route``."""
    work = _blank_profile(route)
    n = float(est["rows"])
    sel = est["selectivity"]
    r = max(1.0, n * sel)
    slots = max(1, len(program.slots))
    n_filters = max(1, len(program.filters))
    grouped = bool(program.group_refs)

    # Filter columns are streamed from DRAM on every route.
    work.record_sequential_read(n * 8.0 * len(program.filters))

    if route == "compiled":
        # Full-column vector kernels: masks over all n rows, then
        # selection-vector gathers for the surviving fraction.
        work.record_work(instructions=n * FILTER_INSTRS * n_filters, alu=n * n_filters)
        work.record_branch_stream("est filters", n * len(program.filters), sel)
        touched = r * 8.0 * (slots + len(program.group_refs))
        work.record_sparse_scan("est gathers", touched, min(1.0, max(sel, 1e-6)))
        rows = r
        for join in est["joins"]:
            work.record_work(instructions=rows * (HASH_INSTRS + VISIT_INSTRS))
            work.record_random(
                "est probes", rows, join["working_set_bytes"], dependent=False
            )
            work.record_branch_stream("est hits", rows, join["hit_fraction"])
            rows *= join["hit_fraction"]
        work.record_work(instructions=rows * AGG_INSTRS * slots, alu=rows * slots)
        if grouped:
            work.record_work(instructions=rows * GROUP_INSTRS)
    elif route == "Typer":
        # Data-centric fused loop: tight per-row code, intermediates in
        # registers, but probes are dependent loads in the row loop.
        work.record_work(
            instructions=n * (2.0 + 2.0 * len(program.filters)), alu=n
        )
        work.record_branch_stream("est filters", n, sel)
        work.record_sparse_scan(
            "est row gathers", r * 8.0 * slots, min(1.0, max(sel, 1e-6))
        )
        rows = r
        for join in est["joins"]:
            work.record_work(instructions=rows * 6.0)
            work.record_random(
                "est probes", rows, join["working_set_bytes"], dependent=True
            )
            work.record_branch_stream("est hits", rows, join["hit_fraction"])
            rows *= join["hit_fraction"]
        work.record_work(instructions=rows * (3.0 * slots + (4.0 if grouped else 0.0)))
    elif route == "Tectorwise":
        # Vector-at-a-time: per-vector dispatch plus cache-resident
        # intermediate vectors, independent probe streams.
        passes = max(1.0, n / 1024.0)
        work.record_work(
            instructions=n * (1.5 + 1.5 * len(program.filters)) + passes * 64.0,
            alu=n,
        )
        work.record_branch_stream("est filters", n, sel)
        work.record_sparse_scan(
            "est vector gathers", r * 8.0 * slots, min(1.0, max(sel, 1e-6))
        )
        rows = r
        vector_traffic = 0.0
        for join in est["joins"]:
            work.record_work(instructions=rows * 5.0)
            work.record_random(
                "est probes", rows, join["working_set_bytes"], dependent=False
            )
            work.record_branch_stream("est hits", rows, join["hit_fraction"])
            vector_traffic += rows * 8.0 * 2.0
            rows *= join["hit_fraction"]
        vector_traffic += rows * 8.0 * slots
        work.record_cached_traffic(read=vector_traffic, write=vector_traffic)
        work.record_work(instructions=rows * (4.0 * slots + (5.0 if grouped else 0.0)))
    else:
        raise ChooserError(f"unknown route {route!r}")
    return work


# ----------------------------------------------------------------------
# Decisions
# ----------------------------------------------------------------------

_DECISIONS: dict = {}
_DECISIONS_LOCK = threading.Lock()
_MAX_DECISIONS = 64


def clear_chooser_cache() -> None:
    with _DECISIONS_LOCK:
        _DECISIONS.clear()


def choose(db, bound) -> dict:
    """The model's route prediction for one bound query on ``db``.

    Returns a plain-data decision dict (JSON-serialisable)::

        {"route": "compiled" | "template",
         "chosen": "<cheapest candidate>",
         "predicted_cycles": {"Typer": ..., "Tectorwise": ..., "compiled": ...},
         "estimates": {...},
         "workload": ...}

    Raises :class:`ChooserError` when the plan cannot be modelled (the
    chooser needs the compiled program's structure as its cost basis).
    """
    plan = bound.plan
    if plan is None:
        raise ChooserError("bound query carries no logical plan")
    key = (db.identity, bound.workload, bound.method, bound.args, bound.kwargs)
    try:
        hash(key)
    except TypeError:
        key = None
    if key is not None:
        with _DECISIONS_LOCK:
            cached = _DECISIONS.get(key)
            if cached is not None:
                return dict(cached)
    try:
        program = compiled_program(plan)
    except CompileError as exc:
        raise ChooserError(f"plan is not compilable: {exc}") from None
    decision = _decide(db, bound, program)
    if key is not None:
        with _DECISIONS_LOCK:
            if len(_DECISIONS) >= _MAX_DECISIONS:
                _DECISIONS.pop(next(iter(_DECISIONS)))
            _DECISIONS[key] = dict(decision)
    return decision


def _decide(db, bound, program: KernelProgram) -> dict:
    from repro.core.profiler import MicroArchProfiler
    from repro.engines.base import QueryResult

    est = estimate_cardinalities(db, program)
    profiler = MicroArchProfiler()
    predicted: dict[str, float] = {}
    for route in ("Typer", "Tectorwise", "compiled"):
        work = _synthesize(route, program, est)
        stub = QueryResult(
            workload=program.workload,
            value=None,
            tuples=int(est["rows"]),
            work=work,
            details={},
        )
        engine_name = route if route != "compiled" else "Typer"
        predicted[route] = float(profiler.profile(engine_name, stub).cycles)
    chosen = min(predicted, key=lambda name: (predicted[name], name))
    return {
        "workload": bound.workload,
        "method": bound.method,
        "route": "compiled" if bound.method == "run_compiled" else "template",
        "chosen": chosen,
        "predicted_cycles": predicted,
        "estimates": est,
    }
