"""Scalar expression trees -> vectorized numpy kernels.

A :class:`ScalarKernel` is the compiled form of one non-aggregate
expression from :mod:`repro.sql.plan`: a flat post-order sequence of
column loads, constants and arithmetic nodes that evaluates over the
*selected* rows only (the caller resolves column leaves through its
selection vector, so no unselected intermediate is ever produced).

Evaluation is elementwise float64 arithmetic, so a kernel's output for
a given row never depends on which morsel the row landed in -- the
property the exact-merge protocol needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compile import CompileError
from repro.sql import plan as ir

#: Arithmetic node evaluators, elementwise and order-independent.
_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


@dataclass(frozen=True)
class ScalarKernel:
    """One compiled scalar expression.

    ``refs`` lists the (table, column) leaves in first-use order --
    the program uses it to plan its gathers -- and ``nodes`` counts the
    arithmetic operations per element for work recording.
    """

    expr: ir.ScalarExpr
    refs: tuple[tuple[str, str], ...]
    nodes: int

    def evaluate(self, fetch, n_rows: int) -> np.ndarray:
        """Evaluate over the current selection.

        ``fetch(table, column)`` must return the column's values for
        the selected rows; ``n_rows`` broadcasts constant-only kernels.
        """
        out = _evaluate(self.expr, fetch)
        if np.ndim(out) == 0:
            return np.full(n_rows, float(out))
        return out


def compile_scalar(expr: ir.ScalarExpr) -> ScalarKernel:
    """Compile one scalar (non-aggregate) expression or raise
    :class:`CompileError` on shapes the kernel set cannot express."""
    refs: list[tuple[str, str]] = []
    nodes = _walk(expr, refs)
    return ScalarKernel(expr=expr, refs=tuple(dict.fromkeys(refs)), nodes=nodes)


def _walk(expr: ir.ScalarExpr, refs: list) -> int:
    if isinstance(expr, ir.ColumnExpr):
        refs.append((expr.ref.table, expr.ref.column))
        return 0
    if isinstance(expr, ir.ConstExpr):
        return 0
    if isinstance(expr, ir.Arith):
        if expr.op not in _ARITH:
            raise CompileError(f"unsupported arithmetic operator {expr.op!r}")
        return 1 + _walk(expr.left, refs) + _walk(expr.right, refs)
    if isinstance(expr, ir.YearOf):
        raise CompileError(
            "EXTRACT(YEAR ...) has no compiled kernel; use a date-range "
            "predicate instead"
        )
    if isinstance(expr, ir.AggCall):
        raise CompileError("nested aggregate in a scalar expression")
    raise CompileError(f"unsupported expression node {type(expr).__name__}")


def _evaluate(expr: ir.ScalarExpr, fetch):
    if isinstance(expr, ir.ColumnExpr):
        return fetch(expr.ref.table, expr.ref.column)
    if isinstance(expr, ir.ConstExpr):
        return expr.value
    if isinstance(expr, ir.Arith):
        return _ARITH[expr.op](_evaluate(expr.left, fetch), _evaluate(expr.right, fetch))
    raise CompileError(f"unsupported expression node {type(expr).__name__}")
