"""Plan compilation: logical plans -> fused vectorized kernel programs.

The hand-wired engine paths (:mod:`repro.engines`) cover the documented
micro-benchmarks and four TPC-H queries; everything else used to raise.
This package compiles *any* supported typed logical plan from
:mod:`repro.sql.planner` into a straight-line kernel program -- filters
evaluated through :func:`repro.engines.scan.predicate_mask` (code
domain and prune-constant aware), a selection vector threaded through
the pipeline so intermediates are never materialised, hash joins on
:class:`repro.engines.hashtable.ChainedHashTable`, and aggregation in
:class:`repro.core.exactsum.ExactSum` units so morsel partials merge
bit-identically on both executors.

This module is import-light on purpose: :mod:`repro.core.execcache`
keys the execution cache on :func:`compile_enabled`, so importing it
must not pull in the engines or the compiler itself.

Toggle with ``REPRO_COMPILE`` (on by default).
"""

from __future__ import annotations

import os

__all__ = ["CompileError", "compile_enabled"]


class CompileError(Exception):
    """A plan shape the compiler declines, with the reason.

    Lowering catches this and reports the reason in its "no binding"
    diagnostic; it is never a silent fallback to a wrong program.
    """


def compile_enabled() -> bool:
    """Whether lowering may fall back to the plan compiler
    (``REPRO_COMPILE``, on unless explicitly disabled)."""
    return os.environ.get("REPRO_COMPILE", "1").strip().lower() not in {
        "0", "false", "no", "off",
    }
