"""TPC-H schema subset used by the paper's experiments.

All micro-benchmarks use the TPC-H schema (Section 2): projection and
selection read ``lineitem``; the joins pair ``supplier``/``nation``
(small), ``partsupp``/``supplier`` (medium) and ``lineitem``/``orders``
(large); Q1/Q6/Q9/Q18 additionally touch ``part``, ``customer`` and
``nation``.

Every attribute is stored as an 8-byte value (int64 keys, dates and
flags; float64 money and quantities), matching the wide fixed-width
columns the profiled column engines scan.  Strings are dictionary
encoded: flags and names are small integer codes with the decode tables
kept here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Days are counted from 1992-01-01 (day 0), the start of the TPC-H
#: populated date range, through 1998-12-31.
DATE_EPOCH = "1992-01-01"
DATE_MIN = 0
DATE_MAX = 2556

#: Commonly used date constants (days since DATE_EPOCH).
DATE_1994_01_01 = 731
DATE_1995_01_01 = 1096
DATE_1995_06_17 = 1263
DATE_1998_09_02 = 2436
DATE_1998_12_01 = 2526

RETURNFLAG_CODES = {"A": 0, "N": 1, "R": 2}
LINESTATUS_CODES = {"F": 0, "O": 1}

NATION_NAMES = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)
REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: p_name colour categories; Q9 filters parts whose name contains
#: "green".  TPC-H draws part-name words from a 92-word list so any one
#: colour appears in roughly 1/17 of names; we keep 17 categories and
#: let category 0 stand for "green".
N_PART_NAME_CATEGORIES = 17
GREEN_CATEGORY = 0

#: Base cardinalities at scale factor 1.
BASE_ROWS = {
    "nation": 25,
    "region": 5,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # approximate: 1-7 lines per order, mean 4
}

KEY_DTYPE = np.int64
DATE_DTYPE = np.int64
FLAG_DTYPE = np.int64
MONEY_DTYPE = np.float64


@dataclass(frozen=True)
class TableSchema:
    """Column names and dtypes for one table."""

    name: str
    columns: tuple[tuple[str, np.dtype], ...]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def dtype_of(self, column: str) -> np.dtype:
        for name, dtype in self.columns:
            if name == column:
                return dtype
        raise KeyError(f"{self.name} has no column {column!r}")


def _schema(name: str, *columns: tuple[str, type]) -> TableSchema:
    return TableSchema(name, tuple((col, np.dtype(dt)) for col, dt in columns))


SCHEMAS: dict[str, TableSchema] = {
    schema.name: schema
    for schema in (
        _schema(
            "nation",
            ("n_nationkey", KEY_DTYPE),
            ("n_regionkey", KEY_DTYPE),
            ("n_name", FLAG_DTYPE),
        ),
        _schema("region", ("r_regionkey", KEY_DTYPE), ("r_name", FLAG_DTYPE)),
        _schema(
            "supplier",
            ("s_suppkey", KEY_DTYPE),
            ("s_nationkey", KEY_DTYPE),
            ("s_acctbal", MONEY_DTYPE),
        ),
        _schema(
            "part",
            ("p_partkey", KEY_DTYPE),
            ("p_namecat", FLAG_DTYPE),
            ("p_retailprice", MONEY_DTYPE),
        ),
        _schema(
            "partsupp",
            ("ps_partkey", KEY_DTYPE),
            ("ps_suppkey", KEY_DTYPE),
            ("ps_availqty", MONEY_DTYPE),
            ("ps_supplycost", MONEY_DTYPE),
        ),
        _schema(
            "customer",
            ("c_custkey", KEY_DTYPE),
            ("c_nationkey", KEY_DTYPE),
            ("c_acctbal", MONEY_DTYPE),
        ),
        _schema(
            "orders",
            ("o_orderkey", KEY_DTYPE),
            ("o_custkey", KEY_DTYPE),
            ("o_orderdate", DATE_DTYPE),
            ("o_totalprice", MONEY_DTYPE),
        ),
        _schema(
            "lineitem",
            ("l_orderkey", KEY_DTYPE),
            ("l_partkey", KEY_DTYPE),
            ("l_suppkey", KEY_DTYPE),
            ("l_linenumber", KEY_DTYPE),
            ("l_quantity", MONEY_DTYPE),
            ("l_extendedprice", MONEY_DTYPE),
            ("l_discount", MONEY_DTYPE),
            ("l_tax", MONEY_DTYPE),
            ("l_returnflag", FLAG_DTYPE),
            ("l_linestatus", FLAG_DTYPE),
            ("l_shipdate", DATE_DTYPE),
            ("l_commitdate", DATE_DTYPE),
            ("l_receiptdate", DATE_DTYPE),
        ),
    )
}

#: Columns the projection micro-benchmark sums, in degree order
#: (Section 2: l_extendedprice, l_discount, l_tax and l_quantity).
PROJECTION_COLUMNS = ("l_extendedprice", "l_discount", "l_tax", "l_quantity")

#: Columns the selection micro-benchmark filters on (Section 2).
SELECTION_PREDICATE_COLUMNS = ("l_shipdate", "l_commitdate", "l_receiptdate")


def rows_at_scale(table: str, scale_factor: float) -> int:
    """Row count of ``table`` at the given scale factor.

    ``nation`` and ``region`` are fixed-size; every other table scales
    linearly, with a floor of one row so tiny test databases stay valid.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    base = BASE_ROWS[table]
    if table in ("nation", "region"):
        return base
    return max(1, round(base * scale_factor))
