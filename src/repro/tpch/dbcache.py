"""On-disk + in-process cache for generated TPC-H databases.

Every pytest session, benchmark run and figure regeneration used to pay
dbgen again for the same ``(scale_factor, seed, tables, skew)``
combination -- tens of seconds at the benchmark scale factors.  This
module persists generated databases under ``~/.cache/repro`` (override
with ``REPRO_CACHE_DIR``; disable persistence with
``REPRO_DISK_CACHE=0``) and memoises them in-process, so a warm machine
pays once.

Cache identity
--------------
The generator streams one ``numpy`` Generator across the tables in a
fixed order, so the produced arrays depend on the *exact set* of tables
generated -- including the dependencies ``generate_database`` adds
automatically (lineitem pulls in orders, orders pulls in customer).
The cache key therefore uses the dependency-expanded table set, in
generation order, never the raw request.

Disk layout
-----------
``<root>/dbgen/<key>/`` holds one ``<table>.<column>.npy`` file per
raw column -- or one ``<table>.<column>.<part>.npy`` file per payload
array of an encoded column (:mod:`repro.storage.encoding`) -- plus a
``meta.json`` describing the key, schema, and codec descriptors.
Directories are populated under a temporary name and renamed into
place, so a killed writer never leaves a half-readable entry.  Columns
load back memory-mapped (``mmap_mode="r"``): a cache hit costs page
faults, not a full read, and parallel workers share the page cache.
Encoded entries are 2-4x smaller on disk, so both the fault traffic
and the cache footprint shrink accordingly.

Format 2 stores the encoded form; format-1 entries (raw columns) are
still readable and are policy-encoded in memory on load.  With
``REPRO_ENCODING=off`` the encoding step is skipped and encoded disk
entries are decoded into raw arrays at load time.

Format 3 additionally persists per-column zone maps
(:mod:`repro.storage.zonemap`) as ``<table>.<column>.zm.<part>.npy``
files, so a warm load attaches pruning statistics without a build pass.
Formats 1 and 2 stay readable; their zone maps are built lazily on
first use.  A persisted code-domain map is only attached when the
in-memory column carries the matching encoding (e.g. not under
``REPRO_ENCODING=off``); otherwise the lazy build recomputes
value-domain statistics.

Format 4 additionally persists partitioning metadata
(:mod:`repro.rollup.partition`) as ``<table>.ptn.<part>.npy`` files and
materialized rollup tables (:mod:`repro.rollup.table`) as
``rollup.<name>.<part>.npy`` files, so a partitioned database with
attached rollups round-trips through :func:`store`/:func:`load` with
its routing surface intact.  Formats 1-3 stay readable (they simply
carry no partitioning or rollups).

Databases smaller than :data:`MIN_PERSIST_BYTES` are not persisted
(they regenerate faster than they deserialise, and the test-suite's
tiny fixtures would otherwise litter the cache); they still hit the
in-process memo.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.storage import ColumnTable, Database, EncodedColumn, encode_columns
from repro.storage import ColumnZoneMap, build_zone_map, encoding_enabled

#: Databases below this size are regenerated rather than persisted.
MIN_PERSIST_BYTES = 8 * 1024 * 1024

#: In-process memo capacity (distinct database identities per process).
MEMO_ENTRIES = 8

_FORMAT_VERSION = 4
_READABLE_FORMATS = (1, 2, 3, 4)

#: key -> {"meta": dict, "tables": {name: {column: ndarray}},
#:         "zone_maps": {name: {column: ColumnZoneMap}},
#:         "partitionings": {name: Partitioning},
#:         "rollups": {name: RollupTable}}
_memo: OrderedDict[str, dict] = OrderedDict()


def cache_root() -> Path:
    """Cache directory root (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def disk_cache_enabled() -> bool:
    return os.environ.get("REPRO_DISK_CACHE", "1").strip().lower() not in {
        "0", "false", "no", "off",
    }


def canonical_tables(tables) -> tuple[str, ...]:
    """Dependency-expanded table set in generation order.

    Mirrors the expansion in
    :func:`repro.tpch.dbgen.generate_database`; the generated content is
    a function of this set, not of the raw request.
    """
    from repro.tpch.dbgen import ALL_TABLES

    requested = set(tables)
    unknown = requested - set(ALL_TABLES)
    if unknown:
        raise ValueError(f"unknown tables: {sorted(unknown)}")
    if "lineitem" in requested:
        requested.add("orders")
    if "orders" in requested:
        requested.add("customer")
    return tuple(name for name in ALL_TABLES if name in requested)


def database_key(
    scale_factor: float, seed: int, tables, skew: float | None
) -> str:
    """Stable, filesystem-safe identity of one generated database."""
    expanded = canonical_tables(tables)
    skew_part = "none" if skew is None else repr(float(skew))
    return (
        f"tpch-sf{float(scale_factor)!r}-seed{int(seed)}"
        f"-skew{skew_part}-{'_'.join(expanded)}"
    )


def _entry_dir(key: str) -> Path:
    return cache_root() / "dbgen" / key


def _attach_zone_maps(db: Database, zone_maps: dict) -> None:
    """Attach cached zone maps where they still describe the in-memory
    column: value-domain maps always do (codec ``compare`` is
    bit-identical to the value comparison), code-domain maps only next
    to the encoding they were built from."""
    for table_name, columns in zone_maps.items():
        if table_name not in db:
            continue
        table = db.table(table_name)
        for column, zone_map in columns.items():
            if column not in table.column_names:
                continue
            if zone_map.domain != "value":
                encoded = table.encoding(column)
                if encoded is None or encoded.codec_kind != zone_map.domain:
                    continue  # lazy build recomputes value-domain stats
            table.set_zone_map(column, zone_map)


def _build_database(
    key: str,
    meta: dict,
    tables: dict,
    zone_maps: dict | None = None,
    partitionings: dict | None = None,
    rollups: dict | None = None,
) -> Database:
    """Fresh Database/ColumnTable wrappers over (shared) column arrays.

    Wrappers are rebuilt per call so callers that mutate their Database
    (``add_table`` of derived tables, lazily materialised row twins)
    never affect other holders of the same cached arrays.  Partitioning
    metadata and rollup tables are immutable and shared as-is.
    """
    db = Database(
        name=meta["name"], scale_factor=meta["scale_factor"]
    )
    for table_name in meta["tables"]:
        db.add_table(ColumnTable(table_name, dict(tables[table_name])))
    if zone_maps:
        _attach_zone_maps(db, zone_maps)
    for table_name, partitioning in (partitionings or {}).items():
        if table_name in db:
            db.table(table_name).set_partitioning(partitioning)
    for rollup in (rollups or {}).values():
        db.add_rollup(rollup)
    db.cache_key = key
    return db


def _memo_put(
    key: str,
    meta: dict,
    tables: dict,
    zone_maps: dict,
    partitionings: dict | None = None,
    rollups: dict | None = None,
) -> None:
    _memo[key] = {
        "meta": meta,
        "tables": tables,
        "zone_maps": zone_maps,
        "partitionings": partitionings or {},
        "rollups": rollups or {},
    }
    _memo.move_to_end(key)
    while len(_memo) > MEMO_ENTRIES:
        _memo.popitem(last=False)


def _extract(db: Database) -> tuple[dict, dict, dict, dict, dict]:
    """Pull the stored column objects (raw arrays or EncodedColumns),
    policy-encoding any raw ones, building their zone maps, and
    describe everything -- including partitioning metadata and rollup
    tables -- in the meta."""
    tables = {}
    zone_maps: dict[str, dict[str, ColumnZoneMap]] = {}
    partitionings: dict[str, object] = {}
    for name in db.table_names:
        table = db.table(name)
        columns = {}
        for column in table.column_names:
            encoded = table.encoding(column)
            columns[column] = encoded if encoded is not None else table[column]
        tables[name] = encode_columns(columns)
        zone_maps[name] = {
            column: build_zone_map(value)
            for column, value in tables[name].items()
        }
        partitioning = getattr(table, "partitioning", None)
        if partitioning is not None:
            partitionings[name] = partitioning
    rollups = {name: db.rollup(name) for name in getattr(db, "rollup_names", ())}
    meta = {
        "format": _FORMAT_VERSION,
        # True when the encoding policy already ran over this entry, so
        # a warm load can skip re-probing the deliberately-raw columns.
        "encoded": encoding_enabled(),
        "name": db.name,
        "scale_factor": db.scale_factor,
        "tables": {
            name: list(db.table(name).column_names) for name in db.table_names
        },
        "encodings": {
            name: {
                column: _describe(value)
                for column, value in columns.items()
                if isinstance(value, EncodedColumn)
            }
            for name, columns in tables.items()
        },
        "zone_maps": {
            name: {
                column: {**zm.payload()[0], "parts": sorted(zm.payload()[1])}
                for column, zm in columns.items()
            }
            for name, columns in zone_maps.items()
        },
        "partitioning": {
            name: {
                **partitioning.payload()[0],
                "parts": sorted(partitioning.payload()[1]),
            }
            for name, partitioning in partitionings.items()
        },
        "rollups": {
            name: {
                **rollup.payload()[0],
                "parts": sorted(rollup.payload()[1]),
            }
            for name, rollup in rollups.items()
        },
    }
    return meta, tables, zone_maps, partitionings, rollups


def _describe(column: EncodedColumn) -> dict:
    codec_meta, arrays = column.payload()
    return {**codec_meta, "parts": sorted(arrays)}


def load(key: str) -> Database | None:
    """Database for ``key`` from the in-process memo or disk, else None."""
    entry = _memo.get(key)
    if entry is not None:
        _memo.move_to_end(key)
        return _build_database(
            key,
            entry["meta"],
            entry["tables"],
            entry.get("zone_maps"),
            entry.get("partitionings"),
            entry.get("rollups"),
        )
    if not disk_cache_enabled():
        return None
    directory = _entry_dir(key)
    meta_path = directory / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError):
        return None
    if meta.get("format") not in _READABLE_FORMATS:
        return None
    encodings = meta.get("encodings", {})
    tables: dict[str, dict] = {}
    try:
        for table_name, columns in meta["tables"].items():
            loaded = {}
            for column in columns:
                descriptor = encodings.get(table_name, {}).get(column)
                if descriptor is None:
                    loaded[column] = np.load(
                        directory / f"{table_name}.{column}.npy", mmap_mode="r"
                    )
                    continue
                arrays = {
                    part: np.load(
                        directory / f"{table_name}.{column}.{part}.npy",
                        mmap_mode="r",
                    )
                    for part in descriptor["parts"]
                }
                rebuilt = EncodedColumn.from_payload(column, descriptor, arrays)
                # REPRO_ENCODING=off: decode encoded disk entries back
                # to raw arrays so execution sees no encoding tier.
                loaded[column] = rebuilt if encoding_enabled() else np.asarray(
                    rebuilt.values
                )
            # Entries persisted with the policy applied need no second
            # pass; format-1 (all-raw) entries and entries written with
            # encoding off are brought up to the in-memory policy.
            if meta.get("encoded") and encoding_enabled():
                tables[table_name] = loaded
            else:
                tables[table_name] = encode_columns(loaded)
        zone_maps = _load_zone_maps(directory, meta)
        partitionings = _load_partitionings(directory, meta)
        rollups = _load_rollups(directory, meta)
    except (OSError, ValueError, KeyError):
        return None
    _memo_put(key, meta, tables, zone_maps, partitionings, rollups)
    return _build_database(key, meta, tables, zone_maps, partitionings, rollups)


def _load_zone_maps(directory: Path, meta: dict) -> dict:
    """Memory-mapped zone maps of a format-3 entry ({} for older
    formats: the lazy per-column build covers them)."""
    out: dict[str, dict[str, ColumnZoneMap]] = {}
    for table_name, columns in meta.get("zone_maps", {}).items():
        rebuilt = {}
        for column, descriptor in columns.items():
            arrays = {
                part: np.load(
                    directory / f"{table_name}.{column}.zm.{part}.npy",
                    mmap_mode="r",
                )
                for part in descriptor["parts"]
            }
            rebuilt[column] = ColumnZoneMap.from_payload(descriptor, arrays)
        out[table_name] = rebuilt
    return out


def _load_partitionings(directory: Path, meta: dict) -> dict:
    """Partitioning metadata of a format-4 entry ({} for older formats)."""
    from repro.rollup.partition import Partitioning

    out: dict[str, Partitioning] = {}
    for table_name, descriptor in meta.get("partitioning", {}).items():
        arrays = {
            part: np.load(
                directory / f"{table_name}.ptn.{part}.npy", mmap_mode="r"
            )
            for part in descriptor["parts"]
        }
        out[table_name] = Partitioning.from_payload(descriptor, arrays)
    return out


def _load_rollups(directory: Path, meta: dict) -> dict:
    """Rollup tables of a format-4 entry ({} for older formats)."""
    from repro.rollup.table import RollupTable

    out: dict[str, RollupTable] = {}
    for name, descriptor in meta.get("rollups", {}).items():
        arrays = {
            part: np.load(
                directory / f"rollup.{name}.{part}.npy", mmap_mode="r"
            )
            for part in descriptor["parts"]
        }
        out[name] = RollupTable.from_payload(descriptor, arrays)
    return out


def store(key: str, db: Database) -> Database:
    """Record a freshly generated database; returns a cache-backed view.

    Always memoises in-process; persists to disk when enabled and the
    database is worth serialising.  The returned Database is rebuilt
    from the memoised arrays so every caller sees the same wrapper
    semantics whether it hit or missed.
    """
    meta, tables, zone_maps, partitionings, rollups = _extract(db)
    _memo_put(key, meta, tables, zone_maps, partitionings, rollups)
    if disk_cache_enabled() and db.nbytes >= MIN_PERSIST_BYTES:
        try:
            _persist(key, meta, tables, zone_maps, partitionings, rollups)
        except OSError:
            pass  # a full/read-only disk must never fail generation
    return _build_database(key, meta, tables, zone_maps, partitionings, rollups)


def _persist(
    key: str,
    meta: dict,
    tables: dict,
    zone_maps: dict,
    partitionings: dict | None = None,
    rollups: dict | None = None,
) -> None:
    directory = _entry_dir(key)
    existing = directory / "meta.json"
    if existing.exists():
        try:
            if json.loads(existing.read_text()).get("format") == _FORMAT_VERSION:
                return
        except (OSError, ValueError):
            pass
        # Stale or unreadable format: replace with the current one.
        shutil.rmtree(directory, ignore_errors=True)
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(
        tempfile.mkdtemp(prefix=f".{key}.tmp-", dir=directory.parent)
    )
    try:
        for table_name, columns in tables.items():
            for column, values in columns.items():
                if isinstance(values, EncodedColumn):
                    _, arrays = values.payload()
                    for part, payload in arrays.items():
                        np.save(
                            staging / f"{table_name}.{column}.{part}.npy",
                            payload,
                        )
                else:
                    np.save(staging / f"{table_name}.{column}.npy", values)
        for table_name, columns in zone_maps.items():
            for column, zone_map in columns.items():
                _, arrays = zone_map.payload()
                for part, payload in arrays.items():
                    np.save(
                        staging / f"{table_name}.{column}.zm.{part}.npy",
                        payload,
                    )
        for table_name, partitioning in (partitionings or {}).items():
            _, arrays = partitioning.payload()
            for part, payload in arrays.items():
                np.save(staging / f"{table_name}.ptn.{part}.npy", payload)
        for name, rollup in (rollups or {}).items():
            _, arrays = rollup.payload()
            for part, payload in arrays.items():
                np.save(staging / f"rollup.{name}.{part}.npy", payload)
        (staging / "meta.json").write_text(json.dumps(meta))
        try:
            staging.rename(directory)
        except OSError:
            # Another process populated the entry first; keep theirs.
            shutil.rmtree(staging, ignore_errors=True)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise


def clear_memo() -> None:
    """Drop the in-process memo (test isolation helper)."""
    _memo.clear()


def prewarm(*specs) -> None:
    """Load (or generate) databases into the in-process memo.

    Each spec is a ``(scale_factor, seed, tables, skew)`` tuple.  The
    parallel figure driver calls this in the parent before forking so
    workers inherit the arrays through copy-on-write pages instead of
    regenerating per process.
    """
    from repro.tpch.dbgen import generate_database

    for scale_factor, seed, tables, skew in specs:
        generate_database(scale_factor, seed, tables=tables, skew=skew)
