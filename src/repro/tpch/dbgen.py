"""Seeded TPC-H data generator.

A numpy reimplementation of the ``dbgen`` population rules that matter
to the paper's experiments: uniform keys, the populated date ranges,
the return-flag/line-status rule that yields Q1's four groups, the
1-7 lineitems-per-order fan-out and the colour-category part names that
give Q9 its ~1/17 filter.  Distributional details that do not affect
micro-architectural behaviour (comment text, V-strings, sparse order
keys) are simplified; see DESIGN.md for the substitution notes.
"""

from __future__ import annotations

import numpy as np

from repro.storage import ColumnTable, Database
from repro.tpch import schema as sc

ALL_TABLES = (
    "nation",
    "region",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)


def _money(rng: np.random.Generator, low: float, high: float, size: int) -> np.ndarray:
    """Uniform money values rounded to cents."""
    return np.round(rng.uniform(low, high, size), 2)


def _keys(
    rng: np.random.Generator, high: int, size: int, skew: float | None
) -> np.ndarray:
    """Foreign keys in [1, high]: uniform (TPC-H) or Zipf-skewed.

    Skew is an *extension* knob (TPC-H is uniform): with a Zipf
    exponent > 1, a few hot keys dominate -- the skewed-workload
    behaviour the paper's uniform benchmark cannot show.
    """
    if skew is None:
        return rng.integers(1, high + 1, size, dtype=sc.KEY_DTYPE)
    if skew <= 1.0:
        raise ValueError("skew must be a Zipf exponent > 1 (or None)")
    ranks = rng.zipf(skew, size)
    return ((ranks - 1) % high + 1).astype(sc.KEY_DTYPE)


def generate_nation() -> ColumnTable:
    n = sc.BASE_ROWS["nation"]
    keys = np.arange(n, dtype=sc.KEY_DTYPE)
    return ColumnTable(
        "nation",
        {
            "n_nationkey": keys,
            "n_regionkey": (keys % sc.BASE_ROWS["region"]).astype(sc.KEY_DTYPE),
            "n_name": keys.astype(sc.FLAG_DTYPE),
        },
    )


def generate_region() -> ColumnTable:
    n = sc.BASE_ROWS["region"]
    keys = np.arange(n, dtype=sc.KEY_DTYPE)
    return ColumnTable("region", {"r_regionkey": keys, "r_name": keys.copy()})


def generate_supplier(rng: np.random.Generator, scale_factor: float) -> ColumnTable:
    n = sc.rows_at_scale("supplier", scale_factor)
    return ColumnTable(
        "supplier",
        {
            "s_suppkey": np.arange(1, n + 1, dtype=sc.KEY_DTYPE),
            "s_nationkey": rng.integers(0, 25, n, dtype=sc.KEY_DTYPE),
            "s_acctbal": _money(rng, -999.99, 9999.99, n),
        },
    )


def generate_part(rng: np.random.Generator, scale_factor: float) -> ColumnTable:
    n = sc.rows_at_scale("part", scale_factor)
    return ColumnTable(
        "part",
        {
            "p_partkey": np.arange(1, n + 1, dtype=sc.KEY_DTYPE),
            "p_namecat": rng.integers(
                0, sc.N_PART_NAME_CATEGORIES, n, dtype=sc.FLAG_DTYPE
            ),
            "p_retailprice": _money(rng, 900.0, 2000.0, n),
        },
    )


def generate_partsupp(
    rng: np.random.Generator, scale_factor: float, n_parts: int, n_suppliers: int
) -> ColumnTable:
    """Four (partkey, suppkey) pairs per part (fewer when the supplier
    table is tiny), distinct suppliers within a part (the TPC-H
    uniqueness rule), suppliers spread uniformly."""
    per_part = min(4, n_suppliers)
    n = n_parts * per_part
    partkeys = np.repeat(np.arange(1, n_parts + 1, dtype=sc.KEY_DTYPE), per_part)
    # TPC-H assigns suppliers with a stride formula that spreads the
    # four suppliers of one part across the supplier table.
    offsets = np.tile(np.arange(per_part, dtype=sc.KEY_DTYPE), n_parts)
    stride = max(1, n_suppliers // per_part)
    suppkeys = (partkeys + offsets * stride) % n_suppliers + 1
    return ColumnTable(
        "partsupp",
        {
            "ps_partkey": partkeys,
            "ps_suppkey": suppkeys.astype(sc.KEY_DTYPE),
            "ps_availqty": rng.integers(1, 10_000, n).astype(sc.MONEY_DTYPE),
            "ps_supplycost": _money(rng, 1.0, 1000.0, n),
        },
    )


def generate_customer(rng: np.random.Generator, scale_factor: float) -> ColumnTable:
    n = sc.rows_at_scale("customer", scale_factor)
    return ColumnTable(
        "customer",
        {
            "c_custkey": np.arange(1, n + 1, dtype=sc.KEY_DTYPE),
            "c_nationkey": rng.integers(0, 25, n, dtype=sc.KEY_DTYPE),
            "c_acctbal": _money(rng, -999.99, 9999.99, n),
        },
    )


def generate_orders(
    rng: np.random.Generator, scale_factor: float, n_customers: int
) -> ColumnTable:
    n = sc.rows_at_scale("orders", scale_factor)
    # TPC-H only populates orders for two thirds of the customers.
    eligible = max(1, (n_customers * 2) // 3)
    return ColumnTable(
        "orders",
        {
            "o_orderkey": np.arange(1, n + 1, dtype=sc.KEY_DTYPE),
            "o_custkey": rng.integers(1, eligible + 1, n, dtype=sc.KEY_DTYPE),
            "o_orderdate": rng.integers(
                sc.DATE_MIN, sc.DATE_MAX - 151, n, dtype=sc.DATE_DTYPE
            ),
            "o_totalprice": _money(rng, 900.0, 500_000.0, n),
        },
    )


def generate_lineitem(
    rng: np.random.Generator,
    orders: ColumnTable,
    n_parts: int,
    n_suppliers: int,
    skew: float | None = None,
) -> ColumnTable:
    """1-7 lineitems per order with the TPC-H pricing/date rules.

    ``skew`` optionally Zipf-skews the part/supplier foreign keys (an
    extension beyond uniform TPC-H)."""
    n_orders = orders.n_rows
    lines_per_order = rng.integers(1, 8, n_orders)
    n = int(lines_per_order.sum())
    orderkeys = np.repeat(orders["o_orderkey"], lines_per_order)
    orderdates = np.repeat(orders["o_orderdate"], lines_per_order)

    linenumbers = np.concatenate(
        [np.arange(1, count + 1) for count in lines_per_order]
    ).astype(sc.KEY_DTYPE) if n_orders else np.empty(0, dtype=sc.KEY_DTYPE)

    quantity = rng.integers(1, 51, n).astype(sc.MONEY_DTYPE)
    # extendedprice = quantity * part price; approximate the part price
    # with the part-table distribution to keep the generator streaming.
    unit_price = rng.uniform(900.0, 2000.0, n)
    extendedprice = np.round(quantity * unit_price, 2)
    discount = np.round(rng.integers(0, 11, n) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, n) / 100.0, 2)

    shipdate = orderdates + rng.integers(1, 122, n)
    commitdate = orderdates + rng.integers(30, 91, n)
    receiptdate = shipdate + rng.integers(1, 31, n)

    # Return flag: 'R' or 'A' (50/50) when the item was received before
    # the current date minus ~17 months, else 'N'; line status is 'F'
    # for shipped-before, 'O' after.  This produces Q1's four groups.
    old = receiptdate <= sc.DATE_1995_06_17
    returnflag = np.where(
        old,
        np.where(rng.random(n) < 0.5, sc.RETURNFLAG_CODES["R"], sc.RETURNFLAG_CODES["A"]),
        sc.RETURNFLAG_CODES["N"],
    ).astype(sc.FLAG_DTYPE)
    linestatus = np.where(
        shipdate <= sc.DATE_1995_06_17,
        sc.LINESTATUS_CODES["F"],
        sc.LINESTATUS_CODES["O"],
    ).astype(sc.FLAG_DTYPE)

    return ColumnTable(
        "lineitem",
        {
            "l_orderkey": orderkeys.astype(sc.KEY_DTYPE),
            "l_partkey": _keys(rng, n_parts, n, skew),
            "l_suppkey": _keys(rng, n_suppliers, n, skew),
            "l_linenumber": linenumbers,
            "l_quantity": quantity,
            "l_extendedprice": extendedprice,
            "l_discount": discount,
            "l_tax": tax,
            "l_returnflag": returnflag,
            "l_linestatus": linestatus,
            "l_shipdate": shipdate.astype(sc.DATE_DTYPE),
            "l_commitdate": commitdate.astype(sc.DATE_DTYPE),
            "l_receiptdate": receiptdate.astype(sc.DATE_DTYPE),
        },
    )


def generate_database(
    scale_factor: float = 0.1,
    seed: int = 42,
    tables=ALL_TABLES,
    skew: float | None = None,
) -> Database:
    """Generate a TPC-H database (served from cache when possible).

    ``tables`` restricts generation (dependencies are added
    automatically: lineitem requires orders, partsupp requires
    part/supplier cardinalities).  ``skew`` Zipf-skews lineitem's
    part/supplier foreign keys (extension; TPC-H is uniform).  The
    result is deterministic in ``(scale_factor, seed, tables, skew)``,
    which is exactly the identity :mod:`repro.tpch.dbcache` uses to
    serve repeat requests from its in-process memo or the on-disk cache
    instead of regenerating.
    """
    from repro.tpch import dbcache

    key = dbcache.database_key(scale_factor, seed, tables, skew)
    cached = dbcache.load(key)
    if cached is not None:
        return cached
    db = _generate_database(scale_factor, seed, tables, skew)
    return dbcache.store(key, db)


#: Count of actual (cache-missing) generations in this process.  The
#: multi-process executor's tests assert workers never regenerate what
#: the parent already materialised (they attach it via shared memory).
GENERATION_COUNT = 0


def _generate_database(
    scale_factor: float,
    seed: int,
    tables,
    skew: float | None,
) -> Database:
    """The actual generator (cache-free path)."""
    global GENERATION_COUNT
    GENERATION_COUNT += 1
    requested = set(tables)
    if "lineitem" in requested:
        requested.add("orders")
    if "orders" in requested:
        requested.add("customer")

    rng = np.random.default_rng(seed)
    db = Database(name=f"tpch-sf{scale_factor}", scale_factor=scale_factor)

    n_suppliers = sc.rows_at_scale("supplier", scale_factor)
    n_parts = sc.rows_at_scale("part", scale_factor)

    if "nation" in requested:
        db.add_table(generate_nation())
    if "region" in requested:
        db.add_table(generate_region())
    if "supplier" in requested:
        db.add_table(generate_supplier(rng, scale_factor))
    if "part" in requested:
        db.add_table(generate_part(rng, scale_factor))
    if "partsupp" in requested:
        db.add_table(generate_partsupp(rng, scale_factor, n_parts, n_suppliers))
    if "customer" in requested:
        db.add_table(generate_customer(rng, scale_factor))
    orders = None
    if "orders" in requested:
        n_customers = sc.rows_at_scale("customer", scale_factor)
        orders = generate_orders(rng, scale_factor, n_customers)
        db.add_table(orders)
    if "lineitem" in requested:
        db.add_table(generate_lineitem(rng, orders, n_parts, n_suppliers, skew=skew))
    return db
