"""TPC-H substrate: schema, seeded generator and the profiled queries."""

from repro.tpch.schema import (
    BASE_ROWS,
    DATE_1994_01_01,
    DATE_1995_01_01,
    DATE_1998_09_02,
    GREEN_CATEGORY,
    PROJECTION_COLUMNS,
    SCHEMAS,
    SELECTION_PREDICATE_COLUMNS,
    TableSchema,
    rows_at_scale,
)
from repro.tpch.dbgen import ALL_TABLES, generate_database
from repro.tpch.sql import (
    GROUPBY_SQL,
    JOIN_SQL,
    TPCH_SQL,
    projection_sql,
    selection_sql,
)
from repro.tpch.queries import (
    PROFILED_QUERIES,
    QUERY_SPECS,
    REFERENCE_IMPLEMENTATIONS,
    QuerySpec,
    q1_reference,
    q6_predicates,
    q6_reference,
    q9_reference,
    q18_group_count,
    q18_reference,
)

__all__ = [
    "ALL_TABLES",
    "GROUPBY_SQL",
    "JOIN_SQL",
    "TPCH_SQL",
    "BASE_ROWS",
    "DATE_1994_01_01",
    "DATE_1995_01_01",
    "DATE_1998_09_02",
    "GREEN_CATEGORY",
    "PROFILED_QUERIES",
    "PROJECTION_COLUMNS",
    "QUERY_SPECS",
    "QuerySpec",
    "REFERENCE_IMPLEMENTATIONS",
    "SCHEMAS",
    "SELECTION_PREDICATE_COLUMNS",
    "TableSchema",
    "generate_database",
    "projection_sql",
    "selection_sql",
    "q1_reference",
    "q6_predicates",
    "q6_reference",
    "q9_reference",
    "q18_group_count",
    "q18_reference",
    "rows_at_scale",
]
