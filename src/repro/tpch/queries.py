"""The four profiled TPC-H queries and numpy reference implementations.

Section 6 picks one query per class: Q1 (low-cardinality group by,
4 groups), Q6 (highly selective filter, ~2%), Q9 (join-intensive) and
Q18 (high-cardinality group by, one group per order).  The reference
implementations here are plain numpy and serve as ground truth for the
engine implementations in :mod:`repro.engines`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage import Database
from repro.tpch import schema as sc

PROFILED_QUERIES = ("Q1", "Q6", "Q9", "Q18")


@dataclass(frozen=True)
class QuerySpec:
    """Descriptive metadata for one profiled query."""

    query_id: str
    category: str
    tables: tuple[str, ...]


QUERY_SPECS = {
    "Q1": QuerySpec("Q1", "low-cardinality group by (4 groups)", ("lineitem",)),
    "Q6": QuerySpec("Q6", "highly selective filter (~2%)", ("lineitem",)),
    "Q9": QuerySpec(
        "Q9",
        "join-intensive",
        ("part", "supplier", "lineitem", "partsupp", "orders", "nation"),
    ),
    "Q18": QuerySpec(
        "Q18", "high-cardinality group by", ("customer", "orders", "lineitem")
    ),
}

#: Q18 HAVING threshold: sum(l_quantity) > 300.
Q18_QUANTITY_THRESHOLD = 300.0


def q1_reference(db: Database) -> dict[tuple[int, int], dict[str, float]]:
    """TPC-H Q1: pricing summary report.

    Groups lineitem rows shipped on or before 1998-09-02 by
    (returnflag, linestatus) and aggregates quantities and prices.
    """
    lineitem = db.table("lineitem")
    mask = lineitem["l_shipdate"] <= sc.DATE_1998_09_02
    flags = lineitem["l_returnflag"][mask]
    status = lineitem["l_linestatus"][mask]
    quantity = lineitem["l_quantity"][mask]
    price = lineitem["l_extendedprice"][mask]
    discount = lineitem["l_discount"][mask]
    tax = lineitem["l_tax"][mask]

    disc_price = price * (1.0 - discount)
    charge = disc_price * (1.0 + tax)
    group_key = flags * 2 + status
    groups = {}
    for key in np.unique(group_key):
        member = group_key == key
        groups[(int(key) // 2, int(key) % 2)] = {
            "sum_qty": float(quantity[member].sum()),
            "sum_base_price": float(price[member].sum()),
            "sum_disc_price": float(disc_price[member].sum()),
            "sum_charge": float(charge[member].sum()),
            "count": int(member.sum()),
        }
    return groups


def q6_reference(db: Database) -> float:
    """TPC-H Q6: forecasting revenue change.

    sum(l_extendedprice * l_discount) over 1994 shipments with discount
    in [0.05, 0.07] and quantity < 24.
    """
    lineitem = db.table("lineitem")
    shipdate = lineitem["l_shipdate"]
    discount = lineitem["l_discount"]
    quantity = lineitem["l_quantity"]
    mask = (
        (shipdate >= sc.DATE_1994_01_01)
        & (shipdate < sc.DATE_1995_01_01)
        & (discount >= 0.05)
        & (discount <= 0.07)
        & (quantity < 24.0)
    )
    return float((lineitem["l_extendedprice"][mask] * discount[mask]).sum())


def q6_predicates(db: Database) -> list[tuple[str, np.ndarray]]:
    """Q6's five individual predicates with their boolean outcome
    streams (the per-predicate selectivities a vectorized engine's
    branch predictor observes -- Section 6)."""
    from repro.engines.scan import predicate_mask

    lineitem = db.table("lineitem")
    n = lineitem.n_rows
    return [
        ("l_shipdate >= 1994-01-01",
         predicate_mask(lineitem, "l_shipdate", "ge", sc.DATE_1994_01_01, 0, n)),
        ("l_shipdate < 1995-01-01",
         predicate_mask(lineitem, "l_shipdate", "lt", sc.DATE_1995_01_01, 0, n)),
        ("l_discount >= 0.05",
         predicate_mask(lineitem, "l_discount", "ge", 0.05, 0, n)),
        ("l_discount <= 0.07",
         predicate_mask(lineitem, "l_discount", "le", 0.07, 0, n)),
        ("l_quantity < 24",
         predicate_mask(lineitem, "l_quantity", "lt", 24.0, 0, n)),
    ]


def q9_reference(db: Database) -> dict[tuple[int, int], float]:
    """TPC-H Q9: product type profit measure.

    Profit per (nation, order year) over lineitems of "green" parts:
    sum(l_extendedprice*(1-l_discount) - ps_supplycost*l_quantity).
    """
    lineitem = db.table("lineitem")
    part = db.table("part")
    supplier = db.table("supplier")
    partsupp = db.table("partsupp")
    orders = db.table("orders")

    green_parts = part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY]
    green = np.isin(lineitem["l_partkey"], green_parts)

    l_partkey = lineitem["l_partkey"][green]
    l_suppkey = lineitem["l_suppkey"][green]
    l_orderkey = lineitem["l_orderkey"][green]
    price = lineitem["l_extendedprice"][green]
    discount = lineitem["l_discount"][green]
    quantity = lineitem["l_quantity"][green]

    # partsupp lookup on the composite (partkey, suppkey) key.
    n_supp = int(supplier["s_suppkey"].max()) + 1
    ps_composite = partsupp["ps_partkey"] * n_supp + partsupp["ps_suppkey"]
    ps_order = np.argsort(ps_composite)
    ps_sorted = ps_composite[ps_order]
    li_composite = l_partkey * n_supp + l_suppkey
    pos = np.searchsorted(ps_sorted, li_composite)
    pos = np.clip(pos, 0, len(ps_sorted) - 1)
    matched = ps_sorted[pos] == li_composite
    supplycost = np.zeros(len(li_composite))
    supplycost[matched] = partsupp["ps_supplycost"][ps_order[pos[matched]]]

    # supplier -> nation (suppkey is dense 1..N).
    nationkey = supplier["s_nationkey"][l_suppkey - 1]
    # orders -> year (orderkey is dense 1..N).
    orderdate = orders["o_orderdate"][l_orderkey - 1]
    year = 1992 + orderdate // 365

    amount = price * (1.0 - discount) - supplycost * quantity
    keep = matched  # inner join semantics on partsupp
    group_key = nationkey[keep] * 10_000 + year[keep]
    result = {}
    for key in np.unique(group_key):
        member = group_key == key
        result[(int(key) // 10_000, int(key) % 10_000)] = float(
            amount[keep][member].sum()
        )
    return result


def q18_reference(db: Database) -> dict[int, float]:
    """TPC-H Q18: large volume customers.

    Group lineitem by orderkey (one group per order -- the paper's
    high-cardinality group by), keep orders with sum(quantity) > 300
    and report (custkey, orderkey, totalprice, sum(quantity)) keyed by
    orderkey here.
    """
    lineitem = db.table("lineitem")
    orderkeys, inverse = np.unique(lineitem["l_orderkey"], return_inverse=True)
    sums = np.bincount(inverse, weights=lineitem["l_quantity"])
    big = sums > Q18_QUANTITY_THRESHOLD
    return {
        int(orderkey): float(total)
        for orderkey, total in zip(orderkeys[big], sums[big])
    }


def q18_group_count(db: Database) -> int:
    """Number of groups Q18's first aggregation produces (1.5M at the
    paper's SF 5; always the number of distinct orders with lines)."""
    return int(len(np.unique(db.table("lineitem")["l_orderkey"])))


REFERENCE_IMPLEMENTATIONS = {
    "Q1": q1_reference,
    "Q6": q6_reference,
    "Q9": q9_reference,
    "Q18": q18_reference,
}
