"""SQL text of the profiled workloads.

The engines in this library execute logical plans directly; the SQL
here documents exactly what those plans compute -- the TPC-H queries in
their official shape (with the paper's parameter choices) and the
micro-benchmarks as the paper describes them in Section 2.  The tests
cross-check structural facts of these strings (tables, columns,
predicates) against the executable definitions so the documentation
cannot drift.
"""

from __future__ import annotations

from repro.tpch.schema import PROJECTION_COLUMNS, SELECTION_PREDICATE_COLUMNS

#: Projection micro-benchmark of degree n (Section 2): a single SUM()
#: over the first n of l_extendedprice, l_discount, l_tax, l_quantity.
PROJECTION_SQL_TEMPLATE = "SELECT SUM({expr}) FROM lineitem;"


def projection_sql(degree: int) -> str:
    """SQL of the projection micro-benchmark with the given degree."""
    if not 1 <= degree <= len(PROJECTION_COLUMNS):
        raise ValueError(f"degree must be in [1, {len(PROJECTION_COLUMNS)}]")
    expr = " + ".join(PROJECTION_COLUMNS[:degree])
    return PROJECTION_SQL_TEMPLATE.format(expr=expr)


def selection_sql(selectivity: float, db=None) -> str:
    """SQL of the selection micro-benchmark: the degree-4 projection
    behind three predicates whose thresholds are chosen per-column so
    each has the requested individual selectivity.

    The thresholds are data-dependent (per-column quantiles), so a
    :class:`~repro.storage.Database` is required to emit executable
    literals; it is measured with numpy directly to keep this module
    free of engine imports.  Without ``db`` the historical placeholder
    form ``[q0.50 of l_shipdate]`` is produced -- documentation only,
    rejected by the parser.
    """
    if not 0.0 < selectivity < 1.0:
        raise ValueError("selectivity must be in (0, 1)")
    if db is None:
        thresholds = {
            column: f"[q{selectivity:.2f} of {column}]"
            for column in SELECTION_PREDICATE_COLUMNS
        }
    else:
        import numpy as np

        lineitem = db.table("lineitem")
        thresholds = {
            column: repr(float(np.quantile(lineitem[column], selectivity)))
            for column in SELECTION_PREDICATE_COLUMNS
        }
    predicates = " AND ".join(
        f"{column} <= {threshold}" for column, threshold in thresholds.items()
    )
    expr = " + ".join(PROJECTION_COLUMNS)
    return f"SELECT SUM({expr}) FROM lineitem WHERE {predicates};"


JOIN_SQL = {
    "small": (
        "SELECT SUM(s_acctbal + s_suppkey) "
        "FROM supplier, nation WHERE s_nationkey = n_nationkey;"
    ),
    "medium": (
        "SELECT SUM(ps_availqty + ps_supplycost) "
        "FROM partsupp, supplier WHERE ps_suppkey = s_suppkey;"
    ),
    "large": (
        "SELECT SUM(l_extendedprice + l_discount + l_tax + l_quantity) "
        "FROM lineitem, orders WHERE l_orderkey = o_orderkey;"
    ),
}

GROUPBY_SQL = (
    "SELECT l_partkey, l_returnflag, SUM(l_extendedprice) "
    "FROM lineitem GROUP BY l_partkey, l_returnflag;"
)

TPCH_SQL = {
    "Q1": """\
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity)                                       AS sum_qty,
       SUM(l_extendedprice)                                  AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount))               AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount),
       COUNT(*)                                              AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus;""",
    "Q6": """\
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24;""",
    "Q9": """\
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (SELECT n_name AS nation,
             EXTRACT(YEAR FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount)
               - ps_supplycost * l_quantity AS amount
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey
        AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey
        AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey
        AND s_nationkey = n_nationkey
        AND p_name LIKE '%green%') AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC;""",
    "Q18": """\
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity)
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey
                     FROM lineitem
                     GROUP BY l_orderkey
                     HAVING SUM(l_quantity) > 300)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate;""",
}

#: TPC-H queries served by the *compiled* path (:mod:`repro.compile`)
#: rather than a hand-wired engine template.  Adapted to the stored
#: schema subset: columns the schema does not keep (``c_mktsegment``,
#: ``l_shipmode``, ``p_brand``/``p_container``, CASE arms) are replaced
#: by predicates over stored columns with comparable selectivity, and
#: dictionary-encoded names compare through their integer codes (see
#: :data:`repro.sql.planner.STRING_EQUALITY_CODES`).
EXTENDED_TPCH_SQL = {
    "Q3": """\
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND c_nationkey < 5
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate
ORDER BY revenue DESC
LIMIT 10;""",
    "Q5": """\
SELECT n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC;""",
    "Q10": """\
SELECT c_custkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND c_nationkey = n_nationkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_acctbal, n_name
ORDER BY revenue DESC
LIMIT 20;""",
    "Q12": """\
SELECT l_returnflag,
       COUNT(*) AS line_count,
       SUM(l_extendedprice) AS revenue
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_returnflag
ORDER BY l_returnflag;""",
    "Q14": """\
SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND p_name LIKE '%green%'
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-10-01';""",
    "Q19": """\
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND p_retailprice BETWEEN 1000 AND 1500
  AND l_quantity BETWEEN 10 AND 20
  AND l_shipdate < DATE '1997-01-01';""",
}
