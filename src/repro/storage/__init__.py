"""Storage substrate: columnar (DSM) and row (NSM) table layouts."""

from repro.storage.column import Column, ColumnTable
from repro.storage.encoding import EncodedColumn, encode_columns, encoding_enabled
from repro.storage.row import DEFAULT_PAGE_BYTES, RowTable
from repro.storage.catalog import Database

__all__ = [
    "Column",
    "ColumnTable",
    "Database",
    "DEFAULT_PAGE_BYTES",
    "EncodedColumn",
    "RowTable",
    "encode_columns",
    "encoding_enabled",
]
