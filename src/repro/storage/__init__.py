"""Storage substrate: columnar (DSM) and row (NSM) table layouts."""

from repro.storage.column import Column, ColumnTable
from repro.storage.encoding import EncodedColumn, encode_columns, encoding_enabled
from repro.storage.row import DEFAULT_PAGE_BYTES, RowTable
from repro.storage.catalog import Database
from repro.storage.zonemap import CHUNK_ROWS, ColumnZoneMap, build_zone_map

__all__ = [
    "CHUNK_ROWS",
    "Column",
    "ColumnTable",
    "ColumnZoneMap",
    "Database",
    "DEFAULT_PAGE_BYTES",
    "EncodedColumn",
    "RowTable",
    "build_zone_map",
    "encode_columns",
    "encoding_enabled",
]
