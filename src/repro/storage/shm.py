"""Shared-memory column transport for multi-process execution.

The morsel-driven process executor (:mod:`repro.core.parallel`) must
hand every worker the same TPC-H database without serialising gigabytes
of column payloads through pipes -- the whole point of morsel
parallelism is that workers *share* the base data and only exchange
tiny work descriptors and per-morsel profiles (Leis et al., SIGMOD'14).

This module moves a :class:`repro.storage.Database` across process
boundaries through **one** ``multiprocessing.shared_memory`` segment:

- :func:`export_database` copies every column into a single segment and
  returns a :class:`SharedDatabase` handle whose picklable
  :attr:`~SharedDatabase.manifest` records, per table and column, the
  dtype, shape and byte offset of the payload.  Encoded columns
  (:mod:`repro.storage.encoding`) export their *encoded* payload arrays
  -- dictionary + codes, run values + ends, packed words -- so the
  segment shrinks by the compression ratio while the attach stays
  zero-copy.
- :func:`attach_database` (worker side) attaches the segment and
  rebuilds the ``Database`` from zero-copy numpy views over the mapping
  (raw columns as array views, encoded columns as ``EncodedColumn``
  over payload views).  Attached columns are marked read-only: workers
  share one physical copy, so writes would be cross-process data races.

Lifecycle
---------
The exporting process owns the segment: ``close()`` drops its mapping,
``unlink()`` removes the name from the system.  :class:`SharedDatabase`
registers an ``atexit`` unlink and works as a context manager, so the
segment is reclaimed on normal exit, on exceptions, and on Ctrl-C in
the parent.  Workers call :meth:`AttachedDatabase.close` (also hooked
via ``atexit``) to drop their mapping; they never unlink.

CPython 3.11's ``SharedMemory`` registers *attached* segments with the
``resource_tracker`` as if they were owned (bpo-39959).  That is
harmless in this module's topology -- pool workers share the
exporter's tracker process, where the duplicate registration collapses
into the owner's single entry (see the note in
:func:`attach_database`) -- and it doubles as a safety net: if every
process dies without cleanup, the tracker unlinks the segment itself.

Pickling guard
--------------
``ColumnTable.__reduce__`` raises: column payloads must cross process
boundaries through this module, never through ``pickle``.  Sending a
table through a pipe silently duplicates the working set per worker
and is always a bug.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory

import numpy as np

from repro.storage.catalog import Database
from repro.storage.column import ColumnTable
from repro.storage.encoding import EncodedColumn
from repro.storage.zonemap import ColumnZoneMap

#: Column payloads start on cache-line boundaries inside the segment.
_ALIGN = 64



def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attached_arrays(
    segment: shared_memory.SharedMemory, descriptors: dict
) -> dict[str, np.ndarray]:
    """Read-only zero-copy views for one manifest ``arrays`` section."""
    arrays = {}
    for part_name, (dtype, length, offset) in descriptors.items():
        view = np.ndarray((length,), dtype=dtype, buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        arrays[part_name] = view
    return arrays


class SharedDatabase:
    """Owner handle for a database exported into one shm segment."""

    def __init__(self, segment: shared_memory.SharedMemory, manifest: dict):
        self._segment = segment
        self.manifest = manifest
        self._unlinked = False
        self._closed = False
        atexit.register(self.unlink)

    @property
    def segment_name(self) -> str:
        return self.manifest["segment"]

    @property
    def nbytes(self) -> int:
        return self._segment.size

    def close(self) -> None:
        """Drop this process's mapping (the name keeps existing)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def disown_atexit(self) -> None:
        """Hand exit-time cleanup to an adopting owner (a worker pool or a
        shard cluster).  The owner registers ONE atexit callback with an
        explicit teardown order — sockets, then child processes, then
        segments — instead of N independent unlink hooks racing whatever
        else runs at interpreter exit.  ``unlink()`` itself still works
        and stays idempotent."""
        atexit.unregister(self.unlink)

    def unlink(self) -> None:
        """Remove the segment from the system.  Idempotent; safe to call
        from ``finally`` blocks, signal handlers and ``atexit``."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass  # another cleanup path won the race
        atexit.unregister(self.unlink)

    def __enter__(self) -> "SharedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


class AttachedDatabase:
    """Worker-side handle: a Database of views over an attached segment."""

    def __init__(self, database: Database, segment: shared_memory.SharedMemory):
        self.database = database
        self._segment = segment
        self._closed = False
        atexit.register(self.close)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Views into the mapping keep the buffer alive; drop the tables
        # first so close() does not export pointers to unmapped pages.
        self.database._tables.clear()
        self.database._row_tables.clear()
        try:
            self._segment.close()
        except BufferError:
            pass  # a live caller-held view pins the mapping; leak it
        atexit.unregister(self.close)

    def __enter__(self) -> Database:
        return self.database

    def __exit__(self, *exc_info) -> None:
        self.close()


def export_database(db: Database, name: str | None = None) -> SharedDatabase:
    """Copy every column of ``db`` into one shared-memory segment.

    The returned handle's :attr:`~SharedDatabase.manifest` is small and
    picklable; ship it to workers and :func:`attach_database` there.
    """
    layout: dict[str, dict] = {}
    payloads: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    offset = 0
    for table_name in db.table_names:
        table = db.table(table_name)
        columns: dict = {}
        for column_name in table.column_names:
            encoded = table.encoding(column_name)
            if encoded is not None:
                meta, arrays = encoded.payload()
                payloads[(table_name, column_name)] = arrays
                parts = {}
                for part_name in sorted(arrays):
                    part = arrays[part_name]
                    offset = _aligned(offset)
                    parts[part_name] = (part.dtype.str, len(part), offset)
                    offset += part.nbytes
                columns[column_name] = {"encoding": meta, "arrays": parts}
            else:
                values = table[column_name]
                offset = _aligned(offset)
                columns[column_name] = (values.dtype.str, len(values), offset)
                offset += values.nbytes
        layout[table_name] = columns

    # Zone maps ride in the same segment (a few KiB next to the column
    # payloads), so workers attach pruning statistics zero-copy too.
    zone_layout: dict[str, dict] = {}
    zone_payloads: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    for table_name in db.table_names:
        table = db.table(table_name)
        columns = {}
        for column_name in table.column_names:
            zone_map = table.zone_map(column_name)
            meta, arrays = zone_map.payload()
            zone_payloads[(table_name, column_name)] = arrays
            parts = {}
            for part_name in sorted(arrays):
                part = np.ascontiguousarray(arrays[part_name])
                zone_payloads[(table_name, column_name)][part_name] = part
                offset = _aligned(offset)
                parts[part_name] = (part.dtype.str, len(part), offset)
                offset += part.nbytes
            columns[column_name] = {"meta": meta, "arrays": parts}
        zone_layout[table_name] = columns

    # Partition metadata and rollup tables are derived data measured in
    # KiB-to-MiB next to the base columns; packing them into the same
    # segment keeps the worker attach a single zero-copy mapping.
    partition_layout: dict[str, dict] = {}
    partition_payloads: dict[str, dict[str, np.ndarray]] = {}
    for table_name in db.table_names:
        partitioning = db.table(table_name).partitioning
        if partitioning is None:
            continue
        meta, arrays = partitioning.payload()
        parts = {}
        for part_name in sorted(arrays):
            part = np.ascontiguousarray(arrays[part_name])
            arrays[part_name] = part
            offset = _aligned(offset)
            parts[part_name] = (part.dtype.str, len(part), offset)
            offset += part.nbytes
        partition_payloads[table_name] = arrays
        partition_layout[table_name] = {"meta": meta, "arrays": parts}

    rollup_layout: dict[str, dict] = {}
    rollup_payloads: dict[str, dict[str, np.ndarray]] = {}
    for rollup_name in getattr(db, "rollup_names", ()):
        meta, arrays = db.rollup(rollup_name).payload()
        parts = {}
        for part_name in sorted(arrays):
            part = np.ascontiguousarray(arrays[part_name])
            arrays[part_name] = part
            offset = _aligned(offset)
            parts[part_name] = (part.dtype.str, len(part), offset)
            offset += part.nbytes
        rollup_payloads[rollup_name] = arrays
        rollup_layout[rollup_name] = {"meta": meta, "arrays": parts}

    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1), name=name)
    try:
        for table_name, columns in layout.items():
            table = db.table(table_name)
            for column_name, descriptor in columns.items():
                if isinstance(descriptor, dict):
                    arrays = payloads[(table_name, column_name)]
                    for part_name, (dtype, length, part_offset) in descriptor[
                        "arrays"
                    ].items():
                        view = np.ndarray(
                            (length,), dtype=dtype, buffer=segment.buf,
                            offset=part_offset,
                        )
                        view[:] = arrays[part_name]
                else:
                    dtype, length, column_offset = descriptor
                    view = np.ndarray(
                        (length,), dtype=dtype, buffer=segment.buf,
                        offset=column_offset,
                    )
                    view[:] = table[column_name]
        for (table_name, column_name), arrays in zone_payloads.items():
            descriptor = zone_layout[table_name][column_name]
            for part_name, (dtype, length, part_offset) in descriptor[
                "arrays"
            ].items():
                view = np.ndarray(
                    (length,), dtype=dtype, buffer=segment.buf,
                    offset=part_offset,
                )
                view[:] = arrays[part_name]
        for layout_section, payload_section in (
            (partition_layout, partition_payloads),
            (rollup_layout, rollup_payloads),
        ):
            for entry_name, descriptor in layout_section.items():
                arrays = payload_section[entry_name]
                for part_name, (dtype, length, part_offset) in descriptor[
                    "arrays"
                ].items():
                    view = np.ndarray(
                        (length,), dtype=dtype, buffer=segment.buf,
                        offset=part_offset,
                    )
                    view[:] = arrays[part_name]
    except BaseException:
        segment.close()
        segment.unlink()
        raise

    manifest = {
        "segment": segment.name,
        "name": db.name,
        "scale_factor": db.scale_factor,
        "identity": db.identity,
        "tables": layout,
        "zone_maps": zone_layout,
        "partitioning": partition_layout,
        "rollups": rollup_layout,
    }
    return SharedDatabase(segment, manifest)


def attach_database(manifest: dict) -> AttachedDatabase:
    """Rebuild a Database from an exported segment (worker side).

    Columns are zero-copy read-only views over the shared mapping; the
    database's ``cache_key`` is the exporter's identity, so execution
    caches and :func:`repro.engines.morsel.shared_structure` treat the
    attached copy as the same content in every worker.
    """
    segment = shared_memory.SharedMemory(name=manifest["segment"])
    # CPython registers attached segments with the resource_tracker as
    # if they were owned (bpo-39959).  Workers spawned by WorkerPool
    # SHARE the exporter's tracker process, where re-registration of an
    # already-tracked name is a no-op and the owner's unlink clears the
    # single entry -- so no corrective unregister is needed (and doing
    # one would strip the owner's registration).  Attaching from an
    # unrelated process tree would need SharedMemory(track=False)
    # (Python >= 3.13); this module does not support that topology.
    try:
        db = Database(name=manifest["name"], scale_factor=manifest["scale_factor"])
        for table_name, columns in manifest["tables"].items():
            table = ColumnTable(table_name)
            for column_name, descriptor in columns.items():
                if isinstance(descriptor, dict):
                    arrays = {}
                    for part_name, (dtype, length, offset) in descriptor[
                        "arrays"
                    ].items():
                        view = np.ndarray(
                            (length,), dtype=dtype, buffer=segment.buf,
                            offset=offset,
                        )
                        view.flags.writeable = False
                        arrays[part_name] = view
                    table.add_column(
                        column_name,
                        EncodedColumn.from_payload(
                            column_name, descriptor["encoding"], arrays
                        ),
                    )
                else:
                    dtype, length, offset = descriptor
                    view = np.ndarray(
                        (length,), dtype=dtype, buffer=segment.buf, offset=offset
                    )
                    view.flags.writeable = False
                    table.add_column(column_name, view)
            for column_name, descriptor in manifest.get("zone_maps", {}).get(
                table_name, {}
            ).items():
                arrays = {}
                for part_name, (dtype, length, offset) in descriptor[
                    "arrays"
                ].items():
                    view = np.ndarray(
                        (length,), dtype=dtype, buffer=segment.buf, offset=offset
                    )
                    view.flags.writeable = False
                    arrays[part_name] = view
                table.set_zone_map(
                    column_name,
                    ColumnZoneMap.from_payload(descriptor["meta"], arrays),
                )
            ptn_descriptor = manifest.get("partitioning", {}).get(table_name)
            if ptn_descriptor is not None:
                from repro.rollup.partition import Partitioning

                table.set_partitioning(
                    Partitioning.from_payload(
                        ptn_descriptor["meta"],
                        _attached_arrays(segment, ptn_descriptor["arrays"]),
                    )
                )
            db.add_table(table)
        for descriptor in manifest.get("rollups", {}).values():
            from repro.rollup.table import RollupTable

            db.add_rollup(
                RollupTable.from_payload(
                    descriptor["meta"],
                    _attached_arrays(segment, descriptor["arrays"]),
                )
            )
        # add_table resets identity; restore the content key last so
        # attached workers alias the exporter's caches.
        db.cache_key = manifest["identity"]
    except BaseException:
        segment.close()
        raise
    return AttachedDatabase(db, segment)
