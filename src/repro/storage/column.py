"""Columnar (DSM) storage.

High-performance engines (Typer, Tectorwise) and the column-store
extension "DBMS C" read data in decomposed columns, each a contiguous
numpy array — the layout that lets them "operate only on the columns
that are necessary for the query" (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.encoding import EncodedColumn


@dataclass(frozen=True)
class Column:
    """A named, typed, contiguous column."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 1:
            raise ValueError(f"column {self.name!r} must be one-dimensional")
        if not self.values.flags.c_contiguous:
            object.__setattr__(self, "values", np.ascontiguousarray(self.values))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def itemsize(self) -> int:
        return self.values.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def take(self, indices: np.ndarray) -> np.ndarray:
        return self.values[indices]


class ColumnTable:
    """A table stored column-by-column.

    Columns must share one length.  Access by name; iteration yields
    column names in insertion order (schema order).
    """

    def __init__(self, name: str, columns: dict[str, np.ndarray] | None = None):
        self.name = name
        self._columns: dict[str, Column | EncodedColumn] = {}
        self._zone_maps: dict = {}
        self._partitioning = None
        self._n_rows: int | None = None
        for column_name, values in (columns or {}).items():
            self.add_column(column_name, values)

    def add_column(self, name: str, values) -> None:
        """Add a column: a raw array, a ``Column``, or an
        ``EncodedColumn`` (compressed storage, transparent decode)."""
        if isinstance(values, EncodedColumn):
            column: Column | EncodedColumn = values.renamed(name)
        elif isinstance(values, Column):
            column = Column(name, values.values)
        else:
            column = Column(name, np.asarray(values))
        if self._n_rows is not None and len(column) != self._n_rows:
            raise ValueError(
                f"column {name!r} has {len(column)} rows, table "
                f"{self.name!r} has {self._n_rows}"
            )
        if name in self._columns:
            raise ValueError(f"duplicate column {name!r} in table {self.name!r}")
        self._columns[name] = column
        self._n_rows = len(column)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name).values

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self._n_rows or 0

    @property
    def n_rows(self) -> int:
        return self._n_rows or 0

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def encoding(self, name: str) -> EncodedColumn | None:
        """The column's encoding, or None when it is stored raw."""
        column = self.column(name)
        return column if isinstance(column, EncodedColumn) else None

    def zone_map(self, name: str):
        """Per-chunk zone map of a column (see
        :mod:`repro.storage.zonemap`), built on first use unless one was
        attached from the dbcache or a shm manifest.  The lazy build is
        a benign race under concurrent readers: both threads compute
        equal statistics and the last write wins."""
        zone_map = self._zone_maps.get(name)
        if zone_map is None:
            from repro.storage.zonemap import build_zone_map

            column = self.column(name)
            source = column if isinstance(column, EncodedColumn) else column.values
            zone_map = build_zone_map(source)
            self._zone_maps[name] = zone_map
        return zone_map

    def set_zone_map(self, name: str, zone_map) -> None:
        """Attach precomputed statistics (dbcache load / shm attach)."""
        self.column(name)  # raises on unknown columns
        self._zone_maps[name] = zone_map

    @property
    def partitioning(self):
        """Clustered-partition metadata
        (:class:`repro.rollup.partition.Partitioning`), or None when the
        table is unpartitioned."""
        return self._partitioning

    def set_partitioning(self, partitioning) -> None:
        """Attach partition metadata.  The table's rows must already be
        clustered accordingly -- builders guarantee this; the bounds are
        validated against the row count as a cheap sanity check."""
        if partitioning is not None and partitioning.n_rows != self.n_rows:
            raise ValueError(
                f"partitioning covers {partitioning.n_rows} rows, table "
                f"{self.name!r} has {self.n_rows}"
            )
        self._partitioning = partitioning

    @property
    def nbytes(self) -> int:
        """Total *logical* bytes across all columns (decoded widths --
        what raw storage would occupy and what the work-profile byte
        accounting is defined over)."""
        return sum(column.nbytes for column in self._columns.values())

    @property
    def encoded_nbytes(self) -> int:
        """Bytes the stored representation actually occupies: payload
        bytes for encoded columns, array bytes for raw ones."""
        return sum(
            column.encoded_nbytes
            if isinstance(column, EncodedColumn)
            else column.nbytes
            for column in self._columns.values()
        )

    def bytes_for(self, column_names) -> int:
        """Bytes occupied by a subset of columns (the traffic a
        column store actually reads for a query)."""
        return sum(self.column(name).nbytes for name in column_names)

    def select(self, mask_or_indices: np.ndarray) -> "ColumnTable":
        """Materialise a filtered copy of the table."""
        result = ColumnTable(self.name)
        for name, column in self._columns.items():
            result.add_column(name, column.values[mask_or_indices])
        return result

    def head(self, n: int = 5) -> dict[str, np.ndarray]:
        return {name: column.values[:n] for name, column in self._columns.items()}

    def __reduce__(self):
        # Pickling a table copies its entire payload through a pipe per
        # worker -- exactly what morsel parallelism exists to avoid.
        raise TypeError(
            f"ColumnTable {self.name!r} must not be pickled; ship column "
            f"payloads across processes via repro.storage.shm instead"
        )
