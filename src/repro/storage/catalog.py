"""Database catalog: named tables in both layouts.

Engines receive a :class:`Database` and pick the layout they execute
on; row tables are materialised lazily so column-only experiments do not
pay for the row copies.
"""

from __future__ import annotations

import itertools

from repro.storage.column import ColumnTable
from repro.storage.row import RowTable

_uid_counter = itertools.count()


class Database:
    """A collection of named :class:`ColumnTable` instances with lazily
    materialised row-layout twins.

    ``cache_key`` names the content when the database came out of the
    dbgen cache (:mod:`repro.tpch.dbcache`); hand-built or subsequently
    mutated databases fall back to the per-object ``uid``, so
    content-addressed consumers (the execution cache) never conflate
    distinct data.
    """

    def __init__(self, name: str = "db", scale_factor: float | None = None):
        self.name = name
        self.scale_factor = scale_factor
        self.cache_key: str | None = None
        self.uid = f"anondb-{next(_uid_counter)}"
        self._tables: dict[str, ColumnTable] = {}
        self._row_tables: dict[str, RowTable] = {}
        self._rollups: dict = {}

    @property
    def identity(self) -> str:
        """Stable content identity when cached, object identity otherwise."""
        return self.cache_key or self.uid

    def add_table(self, table: ColumnTable) -> None:
        if table.name in self._tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table
        # Post-hoc mutation invalidates any previous identity (content
        # key and uid alike) so memoized executions never alias.
        self.cache_key = None
        self.uid = f"anondb-{next(_uid_counter)}"

    def table(self, name: str) -> ColumnTable:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no table {name!r}; "
                f"available: {sorted(self._tables)}"
            ) from None

    def add_rollup(self, rollup) -> None:
        """Register a materialized rollup
        (:class:`repro.rollup.table.RollupTable`).

        Deliberately does *not* invalidate the database identity: a
        rollup is derived data over unchanged base tables, so memoized
        base-table executions stay valid (routing happens upstream of
        the execution cache and is keyed separately via
        ``REPRO_ROLLUPS``)."""
        if rollup.base_table not in self._tables:
            raise KeyError(
                f"rollup {rollup.name!r} references unknown base table "
                f"{rollup.base_table!r}"
            )
        self._rollups[rollup.name] = rollup

    def rollup(self, name: str):
        try:
            return self._rollups[name]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no rollup {name!r}; "
                f"available: {sorted(self._rollups)}"
            ) from None

    @property
    def rollup_names(self) -> tuple[str, ...]:
        return tuple(self._rollups)

    def row_table(self, name: str) -> RowTable:
        """Row-layout twin of a table (materialised on first use)."""
        if name not in self._row_tables:
            self._row_tables[name] = RowTable(self.table(name))
        return self._row_tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> ColumnTable:
        return self.table(name)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    @property
    def nbytes(self) -> int:
        return sum(table.nbytes for table in self._tables.values())

    @property
    def encoded_nbytes(self) -> int:
        """Bytes the stored (possibly compressed) columns occupy."""
        return sum(table.encoded_nbytes for table in self._tables.values())

    def summary(self) -> dict[str, dict[str, int]]:
        """Row/byte counts per table (for reports and examples)."""
        return {
            name: {"rows": table.n_rows, "bytes": table.nbytes}
            for name, table in self._tables.items()
        }
