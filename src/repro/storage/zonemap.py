"""Per-chunk zone maps: min/max/null statistics for data skipping.

"Data Formats in Analytical DBMSs" identifies embedded min/max
statistics as the workhorse pruning mechanism of every modern columnar
format: a scan consults the per-chunk bounds *before* touching the
chunk and skips chunks no row of which can satisfy the predicate.  This
module computes those statistics for every column at load/encode time
-- in the **code domain** for dictionary and frame-of-reference encoded
columns (:mod:`repro.storage.encoding`), so building the map never
decodes a value -- and classifies predicate atoms against them.

Classification contract (the false-positive-only guarantee)
-----------------------------------------------------------
:meth:`ColumnZoneMap.classify` returns one of three verdicts per chunk:

- :data:`ALL_TRUE` -- *every* row of the chunk satisfies the atom; the
  engine's mask for the chunk is provably all ones.
- :data:`ALL_FALSE` -- *no* row satisfies it; the mask is all zeros.
- :data:`MIXED` -- the statistics cannot decide; the chunk must be
  scanned.

ALL_TRUE/ALL_FALSE are theorems, never estimates: the per-chunk
min/max are exact statistics of the stored data, and the atom is
classified with the *same* threshold-to-cut computation the codecs'
``compare`` kernels use (``searchsorted`` against the sorted dictionary,
exact float-threshold rebasing for frame-of-reference codes).  Pruning
built on these verdicts can therefore only keep chunks it did not need
(a false positive costs a scan), never drop a qualifying row.

Chunks are :data:`CHUNK_ROWS` rows -- a multiple of
:data:`~repro.engines.morsel.MORSEL_ALIGN` so chunk boundaries are
always valid morsel boundaries; the final chunk absorbs the tail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Rows per zone-map chunk.  A multiple of ``MORSEL_ALIGN`` (64) so
#: every chunk boundary is a legal morsel boundary, and small enough
#: that a selective predicate over clustered data isolates narrow kept
#: ranges (8192 rows = 64 KiB per 8-byte column).
CHUNK_ROWS = 8192

#: Classification verdicts (uint8-encoded for vectorized plan logic).
ALL_FALSE = 0
ALL_TRUE = 1
MIXED = 2

#: Dictionary domains up to this size additionally record a per-chunk
#: distinct-code bitmask (one uint64), refining ``eq`` classification.
MAX_CODESET_DOMAIN = 64


def chunk_starts(n_rows: int, chunk_rows: int = CHUNK_ROWS) -> np.ndarray:
    """Start offsets of the chunk grid over ``n_rows`` rows."""
    if n_rows <= 0:
        return np.empty(0, dtype=np.int64)
    return np.arange(0, n_rows, chunk_rows, dtype=np.int64)


@dataclass
class ColumnZoneMap:
    """Per-chunk statistics of one column.

    ``domain`` records what the min/max describe: ``"value"`` (decoded
    values; raw and RLE columns) or ``"dict"``/``"for"`` (codes of the
    matching codec).  Code-domain maps are only meaningful next to the
    encoding they were built from; :meth:`classify` refuses to decide
    (all-MIXED) when the encoding is absent.

    ``null_counts`` is carried for format completeness -- the generated
    TPC-H data has no NULLs, so the counts are zero -- and keeps the
    layout aligned with the formats surveyed in the paper's related
    work, where a chunk of all NULLs prunes any non-IS-NULL predicate.
    """

    chunk_rows: int
    n_rows: int
    domain: str
    mins: np.ndarray
    maxs: np.ndarray
    null_counts: np.ndarray
    code_sets: np.ndarray | None = None

    @property
    def n_chunks(self) -> int:
        return len(self.mins)

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        lo = index * self.chunk_rows
        return lo, min(lo + self.chunk_rows, self.n_rows)

    # ------------------------------------------------------------------
    # Atom classification
    # ------------------------------------------------------------------
    def classify(self, op: str, threshold, encoding=None) -> np.ndarray:
        """Per-chunk verdicts for ``column <op> threshold``.

        ``encoding`` is the column's :class:`EncodedColumn` (or None for
        raw columns); code-domain maps translate the threshold into the
        code domain with the codec's own cut computation, so a verdict
        here agrees exactly with what ``compare`` would return.
        """
        if self.n_chunks == 0:
            return np.empty(0, dtype=np.uint8)
        if self.domain == "value":
            return self._classify_bounds(op, threshold)
        if encoding is None or encoding.codec_kind != self.domain:
            return np.full(self.n_chunks, MIXED, dtype=np.uint8)
        if self.domain == "dict":
            return self._classify_dict(op, threshold, encoding.encoding)
        if self.domain == "for":
            return self._classify_for(op, threshold, encoding.encoding)
        return np.full(self.n_chunks, MIXED, dtype=np.uint8)

    def _verdicts(self, all_true, all_false) -> np.ndarray:
        out = np.full(self.n_chunks, MIXED, dtype=np.uint8)
        out[np.asarray(all_true)] = ALL_TRUE
        out[np.asarray(all_false)] = ALL_FALSE
        return out

    def _const(self, value: bool) -> np.ndarray:
        return np.full(self.n_chunks, ALL_TRUE if value else ALL_FALSE,
                       dtype=np.uint8)

    def _classify_bounds(self, op: str, threshold) -> np.ndarray:
        """Value-domain verdicts (mirrors ``compare_values`` exactly)."""
        mn, mx = self.mins, self.maxs
        if op == "le":
            return self._verdicts(mx <= threshold, mn > threshold)
        if op == "lt":
            return self._verdicts(mx < threshold, mn >= threshold)
        if op == "ge":
            return self._verdicts(mn >= threshold, mx < threshold)
        if op == "gt":
            return self._verdicts(mn > threshold, mx <= threshold)
        if op == "eq":
            return self._verdicts(
                (mn == threshold) & (mx == threshold),
                (threshold < mn) | (threshold > mx),
            )
        raise ValueError(f"unsupported op {op!r}")

    def _code_verdicts(self, op_codes: str, cut: int) -> np.ndarray:
        """Verdicts for a code-domain mask of the given shape."""
        mn, mx = self.mins, self.maxs
        if op_codes == "lt":  # codes < cut pass
            return self._verdicts(mx < cut, mn >= cut)
        if op_codes == "le":
            return self._verdicts(mx <= cut, mn > cut)
        if op_codes == "ge":  # codes >= cut pass
            return self._verdicts(mn >= cut, mx < cut)
        if op_codes == "gt":
            return self._verdicts(mn > cut, mx <= cut)
        if op_codes == "eq":
            verdicts = self._verdicts((mn == cut) & (mx == cut),
                                      (cut < mn) | (cut > mx))
            if self.code_sets is not None and 0 <= cut < 64:
                absent = (self.code_sets >> np.uint64(cut)) & np.uint64(1) == 0
                verdicts[absent] = ALL_FALSE
            return verdicts
        raise ValueError(f"unsupported op {op_codes!r}")

    def _classify_dict(self, op: str, threshold, encoding) -> np.ndarray:
        """Mirror of :meth:`DictionaryEncoding.compare`'s cuts."""
        dictionary = encoding.dictionary
        n_dict = len(dictionary)
        if n_dict == 0:
            return self._const(False)
        if op in ("le", "lt"):
            side = "right" if op == "le" else "left"
            cut = int(np.searchsorted(dictionary, threshold, side=side))
            if cut <= 0:
                return self._const(False)
            if cut >= n_dict:
                return self._const(True)
            return self._code_verdicts("lt", cut)
        if op in ("ge", "gt"):
            side = "left" if op == "ge" else "right"
            cut = int(np.searchsorted(dictionary, threshold, side=side))
            if cut <= 0:
                return self._const(True)
            if cut >= n_dict:
                return self._const(False)
            return self._code_verdicts("ge", cut)
        if op == "eq":
            cut = int(np.searchsorted(dictionary, threshold))
            if cut >= n_dict or dictionary[cut] != threshold:
                return self._const(False)
            return self._code_verdicts("eq", cut)
        raise ValueError(f"unsupported op {op!r}")

    def _classify_for(self, op: str, threshold, encoding) -> np.ndarray:
        """Mirror of :meth:`ForBitPackEncoding.compare`'s exact
        float-threshold rebasing."""
        rebased = float(threshold) - float(encoding.reference)
        top = (1 << encoding.bits) - 1
        if op == "le":
            cut = math.floor(rebased)
            if cut < 0:
                return self._const(False)
            return self._code_verdicts("le", min(cut, top))
        if op == "lt":
            cut = math.ceil(rebased)
            if cut <= 0:
                return self._const(False)
            if cut > top:
                return self._const(True)
            return self._code_verdicts("lt", cut)
        if op == "ge":
            cut = math.ceil(rebased)
            if cut <= 0:
                return self._const(True)
            if cut > top:
                return self._const(False)
            return self._code_verdicts("ge", cut)
        if op == "gt":
            cut = math.floor(rebased)
            if cut < 0:
                return self._const(True)
            if cut >= top:
                return self._const(False)
            return self._code_verdicts("gt", cut)
        if op == "eq":
            if rebased != math.floor(rebased) or not 0 <= rebased <= top:
                return self._const(False)
            return self._code_verdicts("eq", int(rebased))
        raise ValueError(f"unsupported op {op!r}")

    # ------------------------------------------------------------------
    # Transport (dbcache / shm)
    # ------------------------------------------------------------------
    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """(json-safe meta, payload arrays) for shm export / disk cache."""
        meta = {
            "chunk_rows": self.chunk_rows,
            "n_rows": self.n_rows,
            "domain": self.domain,
        }
        arrays = {
            "mins": self.mins,
            "maxs": self.maxs,
            "nulls": self.null_counts,
        }
        if self.code_sets is not None:
            arrays["codesets"] = self.code_sets
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "ColumnZoneMap":
        return cls(
            chunk_rows=int(meta["chunk_rows"]),
            n_rows=int(meta["n_rows"]),
            domain=meta["domain"],
            mins=arrays["mins"],
            maxs=arrays["maxs"],
            null_counts=arrays["nulls"],
            code_sets=arrays.get("codesets"),
        )


def _chunk_min_max(values: np.ndarray, starts: np.ndarray):
    return (
        np.minimum.reduceat(values, starts),
        np.maximum.reduceat(values, starts),
    )


def build_zone_map(column, chunk_rows: int = CHUNK_ROWS) -> ColumnZoneMap:
    """Zone map for one column (an :class:`EncodedColumn` or an array).

    Encoded dict/FoR columns are scanned in the code domain -- the
    statistics come straight off the (1-4 byte) codes and no value is
    ever decoded; RLE columns reduce their run values; raw columns
    reduce the array.  Cost is one vectorized min/max pass at load time.
    """
    from repro.storage.encoding import EncodedColumn

    if isinstance(column, EncodedColumn):
        n_rows = len(column)
        starts = chunk_starts(n_rows, chunk_rows)
        kind = column.codec_kind
        if kind in ("dict", "for"):
            codes = column.codes_range(0, n_rows)
            mins, maxs = _chunk_min_max(codes, starts)
            code_sets = None
            if kind == "dict" and len(column.encoding.dictionary) <= MAX_CODESET_DOMAIN:
                bits = np.uint64(1) << codes.astype(np.uint64)
                code_sets = np.bitwise_or.reduceat(bits, starts)
            return ColumnZoneMap(
                chunk_rows=chunk_rows,
                n_rows=n_rows,
                domain=kind,
                mins=mins,
                maxs=maxs,
                null_counts=np.zeros(len(starts), dtype=np.int64),
                code_sets=code_sets,
            )
        # RLE (and any future codec): value-domain stats off the decoded
        # view; compare() is bit-identical to the value comparison, so
        # value-domain verdicts stay exact.
        values = np.asarray(column.values)
    else:
        values = np.asarray(column)
        n_rows = len(values)
    n_rows = len(values)
    starts = chunk_starts(n_rows, chunk_rows)
    if n_rows == 0:
        empty = np.empty(0, dtype=values.dtype if values.ndim else np.float64)
        return ColumnZoneMap(chunk_rows, 0, "value", empty, empty,
                             np.empty(0, dtype=np.int64))
    mins, maxs = _chunk_min_max(values, starts)
    return ColumnZoneMap(
        chunk_rows=chunk_rows,
        n_rows=n_rows,
        domain="value",
        mins=mins,
        maxs=maxs,
        null_counts=np.zeros(len(starts), dtype=np.int64),
    )
