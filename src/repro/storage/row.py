"""Row-oriented (NSM) storage.

The traditional commercial row store "DBMS R" reads slotted pages of
full tuples: every query drags entire rows through the memory hierarchy
regardless of which attributes it needs.  We store rows as a numpy
structured array partitioned into fixed-size pages, which both executes
for real and lets the profiler account the page-granular traffic.
"""

from __future__ import annotations

import numpy as np

from repro.storage.column import ColumnTable

DEFAULT_PAGE_BYTES = 8192


class RowTable:
    """A table stored row-by-row in slotted pages.

    Built from a :class:`ColumnTable` so both layouts always hold the
    same data (and tests can cross-check results between engines).
    """

    def __init__(self, source: ColumnTable, page_bytes: int = DEFAULT_PAGE_BYTES):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.name = source.name
        self.page_bytes = page_bytes
        dtype = np.dtype(
            [(name, source.column(name).dtype) for name in source.column_names]
        )
        self._rows = np.empty(source.n_rows, dtype=dtype)
        for name in source.column_names:
            self._rows[name] = source[name]
        self.row_bytes = dtype.itemsize
        self.rows_per_page = max(1, page_bytes // self.row_bytes) if source.n_rows else 1

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_pages(self) -> int:
        if not self.n_rows:
            return 0
        return -(-self.n_rows // self.rows_per_page)  # ceil division

    @property
    def nbytes(self) -> int:
        """Bytes the table occupies on its pages (including slack)."""
        return self.n_pages * self.page_bytes

    @property
    def tuple_bytes(self) -> int:
        return self.row_bytes

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._rows.dtype.names or ())

    def column(self, name: str) -> np.ndarray:
        """A (strided) view of one attribute across all rows."""
        if name not in self.column_names:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return self._rows[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def rows(self) -> np.ndarray:
        """The underlying structured array (full tuples)."""
        return self._rows

    def page(self, index: int) -> np.ndarray:
        """Rows stored on page ``index``."""
        if not 0 <= index < self.n_pages:
            raise IndexError(f"page {index} out of range [0, {self.n_pages})")
        start = index * self.rows_per_page
        return self._rows[start : start + self.rows_per_page]

    def scan_bytes(self) -> int:
        """Bytes a full scan moves: all pages, i.e. all attributes of
        every tuple — the row store reads rows, never single columns."""
        return self.nbytes
