"""Lightweight columnar compression with operate-on-encoded-data kernels.

Section 8 of the paper shows the engines saturating neither memory
bandwidth nor cores because scans drag full-width (8-byte) values
through the hierarchy.  MorphStore (Damme et al., VLDB'20) and the
analytical-formats survey (Liu et al.) make the counterpoint:
*lightweight* compression -- dictionary, run-length, frame-of-reference
bit-packing -- cuts the bytes a scan moves by 2-8x, and the common
operators can run **directly on the encoded data** instead of decoding
first.  This module supplies that storage tier:

- :class:`DictionaryEncoding` -- sorted-unique dictionary + small-int
  codes, for low-cardinality columns of any dtype (flags, discounts,
  quantities).  The dictionary is sorted, so range predicates translate
  into *code-domain* comparisons via one ``searchsorted`` on the
  dictionary.
- :class:`RLEEncoding` -- run values + cumulative run ends, for sorted
  keys (``l_orderkey``).  Predicates evaluate per *run*, then expand.
- :class:`ForBitPackEncoding` -- frame-of-reference bit-packing for
  bounded integers (dates, keys, line numbers): values are rebased to
  ``value - reference`` codes of ``bits`` bits, packed into 64-bit
  words by vectorized shift/or kernels (:func:`pack_bits` /
  :func:`unpack_bits`).  Predicates compare byte-aligned scan codes
  against the rebased threshold; the full-width values are never
  materialised.

:class:`EncodedColumn` wraps one encoding behind the
:class:`~repro.storage.column.Column` read API (``values``, ``dtype``,
``itemsize``, ``nbytes``, ``take``), so every consumer that does not
opt into the code-domain kernels sees a transparent decode.  The
*logical* properties (``dtype``, ``itemsize``, ``nbytes``) deliberately
report the decoded shape: all work-profile byte accounting stays
bit-identical to raw execution, and the encoded footprint is exposed
separately (``encoded_nbytes``, ``scan_itemsize``) for the compression
analyses.

The policy (:func:`choose_encoding`) picks a codec from cheap column
stats at load time; ``REPRO_ENCODING=off`` disables the whole tier.
"""

from __future__ import annotations

import math
import os

import numpy as np

#: Environment toggle: ``REPRO_ENCODING=off`` (or 0/false/no) disables
#: encoding at database load time; everything then runs on raw arrays.
ENV_VAR = "REPRO_ENCODING"

_OFF_VALUES = {"0", "false", "no", "off"}

#: Policy bounds (see :func:`choose_encoding`).
MAX_DICT_SIZE = 4096
MAX_FOR_BITS = 32
#: A sorted column is RLE-encoded when its mean run length is >= 2.
RLE_MIN_RUN_LENGTH = 2.0
#: Cardinality probe: sample size and the sample-cardinality cutoff
#: above which a float column is assumed high-cardinality without
#: paying a full ``np.unique`` sort.
_PROBE_SAMPLE = 4096
_PROBE_MAX_SAMPLE_CARDINALITY = 512


#: Environment toggle for code-domain *aggregation* (summing codes
#: instead of decoded values).  Independent of ``REPRO_ENCODING`` so the
#: two effects can be measured separately; tracked by the execution
#: cache key like the other storage-tier modes.
AGG_ENV_VAR = "REPRO_ENCODED_AGG"

#: Largest FoR code width the count-based aggregation path will
#: bincount over (2**16 bins); wider domains use the integer-sum
#: identity or decode.
AGG_MAX_BITS = 16

#: Every |value| <= 2**53 converts to float64 exactly, which is what
#: makes the FoR integer-sum identity bit-identical to the decoded path.
_EXACT_FLOAT_BOUND = 1 << 53


def encoding_enabled() -> bool:
    """Whether the encoding tier is on (``REPRO_ENCODING`` escape hatch)."""
    return os.environ.get(ENV_VAR, "on").strip().lower() not in _OFF_VALUES


def encoded_agg_enabled() -> bool:
    """Whether aggregates may run in the code domain
    (``REPRO_ENCODED_AGG`` escape hatch; results are bit-identical
    either way, only the execution strategy changes)."""
    return os.environ.get(AGG_ENV_VAR, "on").strip().lower() not in _OFF_VALUES


def selection_mask(selected, length: int) -> np.ndarray | None:
    """Normalize ``selected`` (bool mask / indices / None) to a bool
    mask of ``length`` rows, or None for "all rows"."""
    if selected is None:
        return None
    selected = np.asarray(selected)
    if selected.dtype == np.bool_:
        return selected
    mask = np.zeros(length, dtype=bool)
    mask[selected] = True
    return mask


def _code_dtype(max_code: int) -> np.dtype:
    """Smallest unsigned dtype that holds codes up to ``max_code``."""
    for candidate in (np.uint8, np.uint16, np.uint32, np.uint64):
        if max_code <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise ValueError(f"code {max_code} exceeds uint64")


# ----------------------------------------------------------------------
# Bit-packing kernels
# ----------------------------------------------------------------------
def pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack unsigned ``codes`` (< 2**bits) into a uint64 word stream.

    Word-aligned layout: ``64 // bits`` codes per word, low bits first;
    the last word is zero-padded.  Fully vectorized (one shift and one
    OR-reduction over a ``(n_words, per_word)`` view).
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    per_word = 64 // bits
    codes = np.asarray(codes)
    n = len(codes)
    n_words = -(-n // per_word) if n else 0
    padded = np.zeros(n_words * per_word, dtype=np.uint64)
    padded[:n] = codes.astype(np.uint64)
    shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
    lanes = padded.reshape(n_words, per_word) << shifts
    return np.bitwise_or.reduce(lanes, axis=1)


def unpack_bits(words: np.ndarray, bits: int, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``length`` codes as uint64."""
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    per_word = 64 // bits
    words = np.asarray(words, dtype=np.uint64)
    shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
    mask = np.uint64((1 << bits) - 1) if bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    lanes = (words[:, None] >> shifts) & mask
    return lanes.ravel()[:length]


# ----------------------------------------------------------------------
# Predicate helpers
# ----------------------------------------------------------------------
#: Supported code-domain comparison operators.
OPS = ("le", "lt", "ge", "gt", "eq")

_RAW_OPS = {
    "le": lambda a, b: a <= b,
    "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b,
    "gt": lambda a, b: a > b,
    "eq": lambda a, b: a == b,
}


def compare_values(values: np.ndarray, op: str, threshold) -> np.ndarray:
    """The decoded-domain comparison the code-domain kernels must match."""
    return _RAW_OPS[op](values, threshold)


def _const_mask(n: int, value: bool) -> np.ndarray:
    return np.full(n, value, dtype=bool)


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------
class DictionaryEncoding:
    """Sorted dictionary + minimal-width codes.

    The dictionary is sorted, so code order equals value order and any
    range predicate becomes a single unsigned comparison on the codes
    after one ``searchsorted`` against the (tiny) dictionary.
    """

    kind = "dict"

    def __init__(self, dictionary: np.ndarray, codes: np.ndarray):
        self.dictionary = dictionary
        self.codes = codes

    @classmethod
    def encode(cls, values: np.ndarray, dictionary: np.ndarray | None = None):
        """Encode ``values``; ``dictionary`` (sorted, complete) skips the
        ``np.unique`` sort when the policy already probed it."""
        values = np.asarray(values)
        if dictionary is None:
            dictionary, inverse = np.unique(values, return_inverse=True)
            codes = inverse.astype(_code_dtype(max(len(dictionary) - 1, 0)))
            return cls(dictionary, codes)
        codes = np.searchsorted(dictionary, values).astype(
            _code_dtype(max(len(dictionary) - 1, 0))
        )
        return cls(dictionary, codes)

    @property
    def length(self) -> int:
        return len(self.codes)

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        return self.dictionary[self.codes[lo:hi]]

    def compare(self, op: str, threshold, lo: int, hi: int) -> np.ndarray:
        codes = self.codes[lo:hi]
        n_dict = len(self.dictionary)
        if n_dict == 0:
            return _const_mask(len(codes), False)
        if op in ("le", "lt"):
            # codes < cut pass.
            side = "right" if op == "le" else "left"
            cut = int(np.searchsorted(self.dictionary, threshold, side=side))
            if cut <= 0:
                return _const_mask(len(codes), False)
            if cut >= n_dict:
                return _const_mask(len(codes), True)
            return codes < codes.dtype.type(cut)
        if op in ("ge", "gt"):
            # codes >= cut pass.
            side = "left" if op == "ge" else "right"
            cut = int(np.searchsorted(self.dictionary, threshold, side=side))
            if cut <= 0:
                return _const_mask(len(codes), True)
            if cut >= n_dict:
                return _const_mask(len(codes), False)
            return codes >= codes.dtype.type(cut)
        if op == "eq":
            cut = int(np.searchsorted(self.dictionary, threshold))
            if cut >= n_dict or self.dictionary[cut] != threshold:
                return _const_mask(len(codes), False)
            return codes == codes.dtype.type(cut)
        raise ValueError(f"unsupported op {op!r}")

    def code_counts(self, lo: int, hi: int, selected=None) -> np.ndarray:
        """Occurrences of each dictionary code over rows ``[lo, hi)``.

        The rebase contract: ``sum(decoded[lo:hi][selected])`` equals
        ``sum(counts[c] * float64(dictionary[c]))`` exactly -- decoding
        is a gather through the dictionary, so the multiset of summed
        values is fully described by these counts.
        """
        codes = self.codes[lo:hi]
        if selected is not None:
            codes = codes[selected]
        return np.bincount(codes, minlength=len(self.dictionary))

    @property
    def encoded_nbytes(self) -> int:
        return int(self.dictionary.nbytes + self.codes.nbytes)

    @property
    def scan_itemsize(self) -> float:
        return float(self.codes.dtype.itemsize)

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        return {}, {"dictionary": self.dictionary, "codes": self.codes}

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict[str, np.ndarray]):
        return cls(arrays["dictionary"], arrays["codes"])


class RLEEncoding:
    """Run values + cumulative run ends, for sorted / runny columns."""

    kind = "rle"

    def __init__(self, run_values: np.ndarray, run_ends: np.ndarray):
        self.run_values = run_values
        self.run_ends = run_ends

    @classmethod
    def encode(cls, values: np.ndarray):
        values = np.asarray(values)
        n = len(values)
        if n == 0:
            return cls(values[:0], np.empty(0, dtype=np.int64))
        starts = np.flatnonzero(values[1:] != values[:-1]) + 1
        run_starts = np.concatenate(([0], starts))
        run_ends = np.concatenate((starts, [n])).astype(np.int64)
        return cls(values[run_starts], run_ends)

    @property
    def length(self) -> int:
        return int(self.run_ends[-1]) if len(self.run_ends) else 0

    def _run_span(self, lo: int, hi: int):
        """Runs overlapping ``[lo, hi)`` and the per-run counts inside."""
        first = int(np.searchsorted(self.run_ends, lo, side="right"))
        last = int(np.searchsorted(self.run_ends, hi, side="left"))
        ends = np.minimum(self.run_ends[first : last + 1], hi)
        previous = np.concatenate(([lo], ends[:-1]))
        return first, last, ends - previous

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        if hi <= lo:
            return self.run_values[:0]
        first, last, counts = self._run_span(lo, hi)
        return np.repeat(self.run_values[first : last + 1], counts)

    def compare(self, op: str, threshold, lo: int, hi: int) -> np.ndarray:
        if hi <= lo:
            return np.empty(0, dtype=bool)
        first, last, counts = self._run_span(lo, hi)
        run_mask = compare_values(self.run_values[first : last + 1], op, threshold)
        return np.repeat(run_mask, counts)

    def run_view(self, lo: int, hi: int, selected=None):
        """``(run_values, counts)`` of the run fragments inside
        ``[lo, hi)``: partial runs at the boundaries are split exactly
        (a morsel or prune boundary mid-run contributes only the rows
        inside the range), and a ``selected`` mask further reduces each
        run to its selected row count.

        The rebase contract: ``sum(decoded[lo:hi][selected])`` equals
        ``sum(counts[r] * float64(run_values[r]))`` exactly -- decoding
        repeats each run value ``counts[r]`` times.
        """
        if hi <= lo:
            return self.run_values[:0], np.empty(0, dtype=np.int64)
        first, last, counts = self._run_span(lo, hi)
        values = self.run_values[first : last + 1]
        mask = selection_mask(selected, hi - lo)
        if mask is not None:
            # Per-run selected counts: reduceat over the run offsets
            # inside the range (counts are all >= 1, so offsets are
            # strictly increasing and every segment is non-empty).
            offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
            counts = np.add.reduceat(mask.astype(np.int64), offsets)
        return values, counts

    @property
    def encoded_nbytes(self) -> int:
        return int(self.run_values.nbytes + self.run_ends.nbytes)

    @property
    def scan_itemsize(self) -> float:
        n = self.length
        return float(self.encoded_nbytes) / n if n else 0.0

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        return {}, {"run_values": self.run_values, "run_ends": self.run_ends}

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict[str, np.ndarray]):
        return cls(arrays["run_values"], arrays["run_ends"])


class ForBitPackEncoding:
    """Frame-of-reference bit-packing for bounded integers.

    The *stored* payload is the packed uint64 word stream (what the
    shared-memory exporter and the disk cache move).  Scans read the
    byte-aligned code cache -- ``ceil(bits / 8)`` bytes per value,
    unpacked once per process by the vectorized kernel -- and compare
    codes against the rebased threshold; decoded 8-byte values are
    never materialised on the predicate path.
    """

    kind = "for"

    def __init__(self, words: np.ndarray, reference: int, bits: int, length: int):
        self.words = words
        self.reference = int(reference)
        self.bits = int(bits)
        self._length = int(length)
        self._codes: np.ndarray | None = None

    @classmethod
    def encode(cls, values: np.ndarray, reference: int | None = None,
               bits: int | None = None):
        """Encode; returns None when the value range needs > MAX_FOR_BITS."""
        values = np.asarray(values)
        if len(values) == 0:
            return cls(np.empty(0, dtype=np.uint64), 0, 1, 0)
        if reference is None or bits is None:
            low = int(values.min())
            span = int(values.max()) - low
            needed = max(1, span.bit_length())
            if needed > MAX_FOR_BITS:
                return None
            reference, bits = low, needed
        codes = (values.astype(np.int64) - np.int64(reference)).astype(np.uint64)
        return cls(pack_bits(codes, bits), reference, bits, len(values))

    @property
    def length(self) -> int:
        return self._length

    def codes(self) -> np.ndarray:
        """Byte-aligned scan codes (unpacked once, then cached)."""
        if self._codes is None:
            codes = unpack_bits(self.words, self.bits, self._length)
            self._codes = codes.astype(_code_dtype((1 << self.bits) - 1))
            self._codes.flags.writeable = False
        return self._codes

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        return self.codes()[lo:hi].astype(np.int64) + np.int64(self.reference)

    def compare(self, op: str, threshold, lo: int, hi: int) -> np.ndarray:
        codes = self.codes()[lo:hi]
        # Rebase the threshold into the code domain.  Thresholds may be
        # floats (quantile cut-offs over integer columns): an integer
        # code c satisfies c <= t iff c <= floor(t), c < t iff
        # c < ceil(t), etc., so the comparison stays exact.
        rebased = float(threshold) - float(self.reference)
        top = (1 << self.bits) - 1
        if op == "le":
            cut = math.floor(rebased)
            if cut < 0:
                return _const_mask(len(codes), False)
            return codes <= min(cut, top)
        if op == "lt":
            cut = math.ceil(rebased)
            if cut <= 0:
                return _const_mask(len(codes), False)
            if cut > top:
                return _const_mask(len(codes), True)
            return codes < cut
        if op == "ge":
            cut = math.ceil(rebased)
            if cut <= 0:
                return _const_mask(len(codes), True)
            if cut > top:
                return _const_mask(len(codes), False)
            return codes >= cut
        if op == "gt":
            cut = math.floor(rebased)
            if cut < 0:
                return _const_mask(len(codes), True)
            if cut >= top:
                return _const_mask(len(codes), False)
            return codes > cut
        if op == "eq":
            if rebased != math.floor(rebased) or not 0 <= rebased <= top:
                return _const_mask(len(codes), False)
            return codes == int(rebased)
        raise ValueError(f"unsupported op {op!r}")

    def code_counts(self, lo: int, hi: int, selected=None) -> np.ndarray:
        """Occurrences of each code over rows ``[lo, hi)`` (callers gate
        on ``bits <= AGG_MAX_BITS`` so the bincount stays small)."""
        codes = self.codes()[lo:hi]
        if selected is not None:
            codes = codes[selected]
        return np.bincount(codes, minlength=1 << self.bits)

    def code_total(self, lo: int, hi: int, selected=None):
        """``(count, sum(values))`` over rows ``[lo, hi)`` as exact
        Python integers via the FoR identity
        ``sum(values) = reference * count + sum(codes)``, or None when
        the identity cannot be bit-identical to the decoded path.

        The guard: every value in ``[reference, reference + 2**bits)``
        must convert to float64 exactly (|value| <= 2**53), because the
        decoded path sums float64 conversions.  The code sum itself is
        always exact -- a 16/16 hi/lo split keeps the int64 partials
        overflow-free for any array length.
        """
        span_top = abs(self.reference) + (1 << self.bits)
        if span_top > _EXACT_FLOAT_BOUND:
            return None
        codes = self.codes()[lo:hi]
        if selected is not None:
            codes = codes[selected]
        n = len(codes)
        wide = codes.astype(np.uint32, copy=False)
        total = (int(np.sum(wide >> 16, dtype=np.int64)) << 16) + int(
            np.sum(wide & 0xFFFF, dtype=np.int64)
        )
        return n, self.reference * n + total

    @property
    def encoded_nbytes(self) -> int:
        return int(self.words.nbytes)

    @property
    def scan_itemsize(self) -> float:
        return float(-(-self.bits // 8))

    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {"reference": self.reference, "bits": self.bits,
                "length": self._length}
        return meta, {"words": self.words}

    @classmethod
    def from_payload(cls, meta: dict, arrays: dict[str, np.ndarray]):
        return cls(arrays["words"], meta["reference"], meta["bits"],
                   meta["length"])


CODECS = {
    codec.kind: codec
    for codec in (DictionaryEncoding, RLEEncoding, ForBitPackEncoding)
}


# ----------------------------------------------------------------------
# EncodedColumn: the Column read API over one codec
# ----------------------------------------------------------------------
class EncodedColumn:
    """A named encoded column satisfying the ``Column`` read API.

    The logical view (``values``, ``dtype``, ``itemsize``, ``nbytes``)
    reports the *decoded* shape so that every byte-accounting consumer
    (work profiles, ``bytes_for``, figures) sees exactly what it would
    see on a raw column; the compressed footprint is a separate,
    explicit channel (``encoded_nbytes``, ``scan_itemsize``).
    """

    def __init__(self, name: str, encoding, dtype):
        self.name = name
        self.encoding = encoding
        self._dtype = np.dtype(dtype)
        self._values: np.ndarray | None = None

    # -- Column read API ----------------------------------------------
    def __len__(self) -> int:
        return self.encoding.length

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def itemsize(self) -> int:
        return self._dtype.itemsize

    @property
    def nbytes(self) -> int:
        return len(self) * self.itemsize

    @property
    def values(self) -> np.ndarray:
        """Transparent decode (cached, read-only)."""
        if self._values is None:
            decoded = np.ascontiguousarray(
                self.encoding.decode_range(0, len(self)).astype(
                    self._dtype, copy=False
                )
            )
            decoded.flags.writeable = False
            self._values = decoded
        return self._values

    def take(self, indices: np.ndarray) -> np.ndarray:
        return self.values[indices]

    # -- encoded-domain API -------------------------------------------
    @property
    def codec_kind(self) -> str:
        return self.encoding.kind

    @property
    def encoded_nbytes(self) -> int:
        """Bytes of the stored (transport/persistence) payload."""
        return self.encoding.encoded_nbytes

    @property
    def scan_itemsize(self) -> float:
        """Bytes per value a code-domain scan of this column reads."""
        return self.encoding.scan_itemsize

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        return self.encoding.decode_range(lo, hi).astype(self._dtype, copy=False)

    def compare(self, op: str, threshold, lo: int, hi: int) -> np.ndarray:
        """Code-domain predicate: bit-identical to comparing decoded
        values (the codecs preserve value order exactly)."""
        return self.encoding.compare(op, threshold, lo, hi)

    def small_domain(self) -> np.ndarray | None:
        """Decode table ``domain[code] -> value`` when the code domain
        is tiny (group-by keys aggregate straight into arrays this
        size); None otherwise."""
        if self.encoding.kind == "dict" and len(self.encoding.dictionary) <= 256:
            return self.encoding.dictionary
        if self.encoding.kind == "for" and self.encoding.bits <= 8:
            return (
                np.arange(1 << self.encoding.bits, dtype=np.int64)
                + self.encoding.reference
            )
        return None

    def codes_range(self, lo: int, hi: int) -> np.ndarray | None:
        """The raw codes for ``[lo, hi)`` (dict/FoR codecs)."""
        if self.encoding.kind == "dict":
            return self.encoding.codes[lo:hi]
        if self.encoding.kind == "for":
            return self.encoding.codes()[lo:hi]
        return None

    # -- code-domain aggregation --------------------------------------
    def agg_domain(self) -> np.ndarray | None:
        """Decode table ``domain[code] -> value`` for the count-based
        aggregation path (dict codecs, and FoR codecs whose domain fits
        :data:`AGG_MAX_BITS` bits of bincount); None when per-code
        counting is not the right shape (RLE, wide FoR, raw)."""
        if self.encoding.kind == "dict":
            return self.encoding.dictionary
        if self.encoding.kind == "for" and self.encoding.bits <= AGG_MAX_BITS:
            return (
                np.arange(1 << self.encoding.bits, dtype=np.int64)
                + self.encoding.reference
            )
        return None

    def code_counts(self, lo: int, hi: int, selected=None) -> np.ndarray | None:
        """Per-code occurrence counts matching :meth:`agg_domain`."""
        if self.encoding.kind == "dict":
            return self.encoding.code_counts(lo, hi, selected)
        if self.encoding.kind == "for" and self.encoding.bits <= AGG_MAX_BITS:
            return self.encoding.code_counts(lo, hi, selected)
        return None

    def run_view(self, lo: int, hi: int, selected=None):
        """RLE run fragments (values, counts) inside ``[lo, hi)``."""
        if self.encoding.kind == "rle":
            return self.encoding.run_view(lo, hi, selected)
        return None

    def exact_sum(self, lo: int, hi: int, selected=None):
        """``sum(decoded[lo:hi][selected])`` computed in the code
        domain, as an :class:`~repro.core.exactsum.ExactSum` that is
        bit-identical to ``ExactSum.of_array`` over the decoded rows;
        None when this codec/domain has no exact code-domain path.

        Per-codec rebase contracts (each argued in DESIGN §2b.8):

        - dict: ``sum = Σ count[c] * float64(dictionary[c])``
        - RLE: ``sum = Σ count[run] * float64(run_value)`` with partial
          runs at the range boundaries split exactly
        - FoR, small domain: per-code counts like dict
        - FoR, wide domain: ``reference * count + Σ codes`` as exact
          integers, when every domain value converts to float64 exactly
        """
        from repro.core.exactsum import ExactSum

        if self.encoding.kind == "rle":
            values, counts = self.encoding.run_view(lo, hi, selected)
            return ExactSum.of_counts(
                np.asarray(values).astype(self._dtype, copy=False), counts
            )
        domain = self.agg_domain()
        if domain is not None:
            counts = self.code_counts(lo, hi, selected)
            return ExactSum.of_counts(
                np.asarray(domain).astype(self._dtype, copy=False), counts
            )
        if self.encoding.kind == "for":
            totals = self.encoding.code_total(lo, hi, selected)
            if totals is not None:
                return ExactSum.of_integer_total(totals[1])
        return None

    # -- transport -----------------------------------------------------
    def payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """(json-safe meta, payload arrays) for shm export / disk cache."""
        meta, arrays = self.encoding.payload()
        return (
            {"codec": self.encoding.kind, "dtype": self._dtype.str, **meta},
            arrays,
        )

    @classmethod
    def from_payload(cls, name: str, meta: dict,
                     arrays: dict[str, np.ndarray]) -> "EncodedColumn":
        codec = CODECS[meta["codec"]]
        encoding = codec.from_payload(meta, arrays)
        return cls(name, encoding, np.dtype(meta["dtype"]))

    def renamed(self, name: str) -> "EncodedColumn":
        if name == self.name:
            return self
        clone = EncodedColumn(name, self.encoding, self._dtype)
        clone._values = self._values
        return clone


# ----------------------------------------------------------------------
# Policy: choose a codec from column stats at load time
# ----------------------------------------------------------------------
def _probe_float_dictionary(values: np.ndarray) -> np.ndarray | None:
    """Exact low-cardinality probe without a full-column sort.

    Seeds a dictionary from a head sample and verifies it by
    round-tripping codes; missing values are folded in (bounded
    retries), so high-cardinality columns bail out after cheap passes.
    """
    if np.isnan(values).any():
        return None
    dictionary = np.unique(values[:_PROBE_SAMPLE])
    if len(dictionary) > _PROBE_MAX_SAMPLE_CARDINALITY:
        return None
    for _ in range(3):
        codes = np.searchsorted(dictionary, values)
        np.clip(codes, 0, len(dictionary) - 1, out=codes)
        missing = dictionary[codes] != values
        if not missing.any():
            return dictionary
        extra = np.unique(values[missing])
        if len(dictionary) + len(extra) > MAX_DICT_SIZE:
            return None
        dictionary = np.union1d(dictionary, extra)
    return None


def choose_encoding(values: np.ndarray):
    """Pick a codec for ``values`` from cheap stats; None keeps it raw.

    Integers: RLE when sorted with mean run length >=
    :data:`RLE_MIN_RUN_LENGTH`; else frame-of-reference bit-packing
    when the range fits :data:`MAX_FOR_BITS`; else a dictionary when
    the (probed) cardinality is tiny.  Floats: dictionary when the
    probed cardinality is tiny.  Anything else stays raw.
    """
    values = np.asarray(values)
    n = len(values)
    if n == 0 or values.ndim != 1:
        return None
    if np.issubdtype(values.dtype, np.integer):
        diffs = np.diff(values)
        if len(diffs) == 0 or (diffs >= 0).all():
            n_runs = int(np.count_nonzero(diffs)) + 1
            if n >= n_runs * RLE_MIN_RUN_LENGTH and n_runs < n:
                return RLEEncoding.encode(values)
        encoded = ForBitPackEncoding.encode(values)
        if encoded is not None:
            return encoded
        dictionary = _probe_float_dictionary(values.astype(np.float64))
        if dictionary is not None:
            return DictionaryEncoding.encode(
                values, dictionary.astype(values.dtype)
            )
        return None
    if np.issubdtype(values.dtype, np.floating):
        dictionary = _probe_float_dictionary(values)
        if dictionary is not None:
            return DictionaryEncoding.encode(values, dictionary)
        return None
    return None


def encode_column(name: str, values: np.ndarray) -> EncodedColumn | None:
    """Encode one column per the policy; None when it should stay raw."""
    encoding = choose_encoding(values)
    if encoding is None:
        return None
    return EncodedColumn(name, encoding, np.asarray(values).dtype)


def encode_columns(columns: dict) -> dict:
    """Policy-encode a ``{name: array}`` mapping (used at database load
    time); respects the ``REPRO_ENCODING`` toggle.  Values that are
    already encoded pass through."""
    if not encoding_enabled():
        return dict(columns)
    result = {}
    for name, values in columns.items():
        if isinstance(values, EncodedColumn):
            result[name] = values
            continue
        encoded = encode_column(name, values)
        result[name] = encoded if encoded is not None else values
    return result


# ----------------------------------------------------------------------
# Encoded group-by kernel
# ----------------------------------------------------------------------
def groupby_dictionary_sums(
    key_columns, weights: np.ndarray, selected=None
) -> dict[tuple, float] | None:
    """Group-by over small-domain encoded keys, aggregating straight
    into the dictionary-sized result (never materialising decoded key
    arrays).

    ``key_columns`` are :class:`EncodedColumn` instances whose domains
    are tiny (Q1's ``l_returnflag``/``l_linestatus``); ``weights`` is
    the measure; ``selected`` optionally restricts rows (bool mask or
    indices).  Returns ``{(key values...): sum}`` or None when a key
    column has no small domain.
    """
    domains = [column.small_domain() for column in key_columns]
    if any(domain is None for domain in domains):
        return None
    n = len(weights) if selected is None else None
    combined = None
    radix = 1
    for column, domain in zip(reversed(key_columns), reversed(domains)):
        codes = column.codes_range(0, len(column))
        if selected is not None:
            codes = codes[selected]
        part = codes.astype(np.int64) * radix
        combined = part if combined is None else combined + part
        radix *= len(domain)
    sums = np.bincount(combined, weights=weights, minlength=radix)
    counts = np.bincount(combined, minlength=radix)
    result = {}
    for flat in np.flatnonzero(counts):
        key, remainder = [], int(flat)
        for domain in reversed(domains):
            key.append(domain[remainder % len(domain)])
            remainder //= len(domain)
        result[tuple(reversed(key))] = float(sums[flat])
    return result
