"""Offline tour of the SQL frontend: ``python -m repro.sql``.

Without arguments, parses every documented workload (TPC-H Q1/Q6/Q9/
Q18, the join sizes, the group-by and the projection degrees), prints
the logical plan and the engine path it lowers to.  With ``--sql`` it
compiles an arbitrary statement; with ``--execute`` it also runs the
statement on a tiny generated database across all four engines.

Everything here works offline -- no service, no network.
"""

from __future__ import annotations

import argparse
import sys

from repro.sql import plan as ir
from repro.sql.api import compile_sql, plan_sql
from repro.sql.errors import SqlError
from repro.sql.lower import lower
from repro.sql.tokens import normalize_sql


def _documented_workloads() -> list[tuple[str, str]]:
    from repro.tpch.sql import (
        EXTENDED_TPCH_SQL,
        GROUPBY_SQL,
        JOIN_SQL,
        TPCH_SQL,
        projection_sql,
    )

    entries = [(f"TPC-H {qid}", sql) for qid, sql in TPCH_SQL.items()]
    entries += [
        (f"TPC-H {qid} (compiled)", sql)
        for qid, sql in EXTENDED_TPCH_SQL.items()
    ]
    entries += [(f"join {size}", sql) for size, sql in JOIN_SQL.items()]
    entries.append(("groupby", GROUPBY_SQL))
    entries += [
        (f"projection degree {degree}", projection_sql(degree))
        for degree in (1, 4)
    ]
    return entries


def _show(title: str, sql: str, execute: bool, scale_factor: float) -> int:
    print(f"== {title} " + "=" * max(1, 66 - len(title)))
    print(normalize_sql(sql))
    try:
        plan = plan_sql(sql)
        bound = lower(plan, sql)
    except SqlError as exc:
        print(f"SqlError: {exc}", file=sys.stderr)
        return 1
    print()
    print(ir.to_text(plan))
    print(f"-> {bound}")
    _show_route(bound)
    if execute:
        _execute(sql, scale_factor)
    print()
    return 0


def _show_route(bound) -> None:
    """One line on how the binding runs: hand-wired template or
    compiled kernel program (with the program's shape)."""
    if bound.method != "run_compiled":
        print(f"   route: hand-wired template ({bound.method})")
        return
    from repro.compile.program import compiled_program

    shape = compiled_program(bound.plan).describe()
    joins = ", ".join(join["table"] for join in shape["joins"]) or "none"
    groups = ", ".join(shape["group_by"]) or "global"
    print(
        f"   route: compiled kernel program -- drives {shape['driving']}, "
        f"{shape['filters']} filter(s), joins: {joins}, groups: {groups}"
    )


def _execute(sql: str, scale_factor: float) -> None:
    from repro.engines import ALL_ENGINES
    from repro.tpch import generate_database

    db = generate_database(scale_factor=scale_factor, seed=7)
    bound = compile_sql(sql)
    _show_chooser(db, bound)
    for engine_cls in ALL_ENGINES:
        result = bound.execute(engine_cls(), db)
        print(f"   {engine_cls.name:<12} value={result.value} tuples={result.tuples}")


def _show_chooser(db, bound) -> None:
    """The engine chooser's model-predicted cycles per route."""
    from repro.compile.chooser import ChooserError, choose

    try:
        decision = choose(db, bound)
    except ChooserError as exc:
        print(f"   chooser: declined ({exc})")
        return
    cycles = ", ".join(
        f"{name}={value:.3g}"
        for name, value in sorted(decision["predicted_cycles"].items())
    )
    print(f"   chooser: predicts {decision['chosen']} fastest ({cycles} cycles)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql",
        description="Parse, plan and lower SQL of the documented dialect.",
    )
    parser.add_argument("--sql", help="statement to compile (default: tour all documented workloads)")
    parser.add_argument(
        "--execute", action="store_true",
        help="also run on a generated database across all four engines",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=0.002,
        help="scale factor for --execute (default 0.002)",
    )
    args = parser.parse_args(argv)

    if args.sql is not None:
        return _show("statement", args.sql, args.execute, args.scale_factor)
    status = 0
    for title, sql in _documented_workloads():
        status |= _show(title, sql, args.execute, args.scale_factor)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
