"""Tokenizer for the documented SQL dialect.

The dialect is exactly what :mod:`repro.tpch.sql` documents: SELECT
lists with arithmetic and SUM/COUNT/AVG aggregates, comma joins,
AND-ed comparison predicates, BETWEEN/IN/LIKE, DATE and INTERVAL
literals, GROUP BY / HAVING / ORDER BY / LIMIT.  Keywords are
case-insensitive; identifiers are case-folded to lower case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.errors import err

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "BY",
        "HAVING", "ORDER", "ASC", "DESC", "LIMIT", "AS", "SUM", "COUNT",
        "AVG", "MIN", "MAX", "BETWEEN", "IN", "LIKE", "DATE", "INTERVAL",
        "DAY", "MONTH", "YEAR", "EXTRACT",
    }
)

#: Multi-character operators first so ``<=`` never lexes as ``<`` ``=``.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
PUNCTUATION = ("(", ")", ",", ";", ".")

KIND_KEYWORD = "keyword"
KIND_IDENT = "ident"
KIND_NUMBER = "number"
KIND_STRING = "string"
KIND_OP = "op"
KIND_EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexeme with its source offset (for error carets)."""

    kind: str
    text: str
    pos: int
    value: object = None

    def is_keyword(self, *names: str) -> bool:
        return self.kind == KIND_KEYWORD and self.text in names

    def is_op(self, *ops: str) -> bool:
        return self.kind == KIND_OP and self.text in ops


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, raising :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident_part(sql[i]):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KIND_KEYWORD, upper, start))
            else:
                tokens.append(Token(KIND_IDENT, word.lower(), start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            text = sql[start:i]
            if text.count(".") > 1:
                raise err(f"malformed number {text!r}", sql, start)
            tokens.append(Token(KIND_NUMBER, text, start, value=float(text)))
            continue
        if ch == "'":
            start = i
            i += 1
            while i < n and sql[i] != "'":
                i += 1
            if i >= n:
                raise err("unterminated string literal", sql, start)
            tokens.append(Token(KIND_STRING, sql[start:i + 1], start, value=sql[start + 1:i]))
            i += 1
            continue
        matched = False
        for op in OPERATORS + PUNCTUATION:
            if sql.startswith(op, i):
                tokens.append(Token(KIND_OP, op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise err(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(KIND_EOF, "", n))
    return tokens


def normalize_sql(sql: str) -> str:
    """Whitespace/case-insensitive canonical text of a query.

    The serve layer keys its compiled-plan cache on this string, so
    requests that differ only in formatting share one plan (and, after
    lowering, one execution-cache entry).
    """
    parts = []
    for token in tokenize(sql):
        if token.kind == KIND_EOF:
            break
        if token.kind == KIND_NUMBER:
            parts.append(repr(float(token.text)))
        else:
            parts.append(token.text)
    # A trailing semicolon is optional and never changes the statement.
    while parts and parts[-1] == ";":
        parts.pop()
    return " ".join(parts)
