"""SQL frontend: tokenizer, parser, logical-plan IR and lowering.

The dialect is exactly the one :mod:`repro.tpch.sql` documents; plans
validate against :mod:`repro.tpch.schema` and lower onto the engines'
existing ``run_*`` paths, so a SQL round-trip produces bit-identical
results to the hand-wired plans.
"""

from repro.sql.api import compile_sql, execute_sql, parse_sql, plan_sql
from repro.sql.errors import SqlError
from repro.sql.lower import BoundQuery, lower
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.sql.tokens import Token, normalize_sql, tokenize

__all__ = [
    "BoundQuery",
    "Planner",
    "SqlError",
    "Token",
    "compile_sql",
    "execute_sql",
    "lower",
    "normalize_sql",
    "parse",
    "parse_sql",
    "plan_sql",
    "tokenize",
]
