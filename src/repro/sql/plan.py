"""Typed logical-plan IR: Scan -> Filter -> Join -> Aggregate -> Project.

Every node is a frozen dataclass built from tuples only, so plans are
hashable and compare structurally -- the lowering layer matches incoming
plans against the plans of the documented workload SQL by plain
equality or by structural inspection.

Column references are fully qualified (``ColRef(table, column)``); the
planner resolves bare names against the FROM tables' schemas before any
plan node is built, so an IR tree is always schema-valid by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColRef:
    """A resolved column: ``table`` is a base table or derived-table alias."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ColumnExpr:
    ref: ColRef

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class ConstExpr:
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Arith:
    op: str
    left: "ScalarExpr"
    right: "ScalarExpr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class YearOf:
    """EXTRACT(YEAR FROM date-column) over epoch-day storage."""

    arg: "ScalarExpr"

    def __str__(self) -> str:
        return f"year({self.arg})"


@dataclass(frozen=True)
class AggCall:
    """sum/count/avg/min/max; ``arg`` is None for COUNT(*)."""

    func: str
    arg: Union["ScalarExpr", None]

    def __str__(self) -> str:
        return f"{self.func}({'*' if self.arg is None else self.arg})"


ScalarExpr = Union[ColumnExpr, ConstExpr, Arith, YearOf, AggCall]


@dataclass(frozen=True)
class NamedExpr:
    """One output column of an Aggregate/Project node."""

    name: str
    expr: ScalarExpr

    def __str__(self) -> str:
        return f"{self.expr} AS {self.name}"


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Compare:
    left: ScalarExpr
    op: str
    right: ScalarExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InSubquery:
    expr: ScalarExpr
    subplan: "PlanNode"

    def __str__(self) -> str:
        return f"{self.expr} IN (<subquery>)"


Predicate = Union[Compare, InSubquery]


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scan:
    table: str


@dataclass(frozen=True)
class Filter:
    child: "PlanNode"
    predicates: tuple[Predicate, ...]


@dataclass(frozen=True)
class Join:
    """Equi-join; ``pairs`` are (left-side, right-side) key columns."""

    left: "PlanNode"
    right: "PlanNode"
    pairs: tuple[tuple[ColRef, ColRef], ...]


@dataclass(frozen=True)
class Aggregate:
    """Group-by + aggregation; ``outputs`` is the full select list."""

    child: "PlanNode"
    group_by: tuple[ColRef, ...]
    outputs: tuple[NamedExpr, ...]
    having: Predicate | None = None


@dataclass(frozen=True)
class Project:
    child: "PlanNode"
    outputs: tuple[NamedExpr, ...]


@dataclass(frozen=True)
class OrderBy:
    child: "PlanNode"
    keys: tuple[tuple[str, bool], ...]  # (output name, descending)


@dataclass(frozen=True)
class Limit:
    child: "PlanNode"
    count: int


@dataclass(frozen=True)
class SubqueryScan:
    """A derived table: a nested plan exposed under an alias."""

    alias: str
    plan: "PlanNode"


PlanNode = Union[Scan, Filter, Join, Aggregate, Project, OrderBy, Limit, SubqueryScan]


# ----------------------------------------------------------------------
# Introspection helpers
# ----------------------------------------------------------------------


def output_names(plan: PlanNode) -> tuple[str, ...]:
    """Names of the columns a plan node produces."""
    if isinstance(plan, (Aggregate, Project)):
        return tuple(out.name for out in plan.outputs)
    if isinstance(plan, (OrderBy, Limit)):
        return output_names(plan.child)
    if isinstance(plan, SubqueryScan):
        return output_names(plan.plan)
    raise TypeError(f"{type(plan).__name__} has no named output list")


def strip_decorations(plan: PlanNode) -> PlanNode:
    """The plan without its OrderBy/Limit wrappers (result-set order and
    truncation do not change which engine path a query binds to)."""
    while isinstance(plan, (OrderBy, Limit)):
        plan = plan.child
    return plan


def flatten_sum(expr: ScalarExpr) -> list[ScalarExpr]:
    """``a + b + c`` -> [a, b, c] (returns [expr] for non-additions)."""
    if isinstance(expr, Arith) and expr.op == "+":
        return flatten_sum(expr.left) + flatten_sum(expr.right)
    return [expr]


def to_text(plan: PlanNode, indent: int = 0) -> str:
    """Indented tree rendering (for the REPL, examples and docs)."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        return f"{pad}Scan({plan.table})"
    if isinstance(plan, Filter):
        preds = " AND ".join(str(p) for p in plan.predicates)
        return f"{pad}Filter[{preds}]\n{to_text(plan.child, indent + 1)}"
    if isinstance(plan, Join):
        pairs = ", ".join(f"{a} = {b}" for a, b in plan.pairs)
        return (
            f"{pad}Join[{pairs}]\n"
            f"{to_text(plan.left, indent + 1)}\n"
            f"{to_text(plan.right, indent + 1)}"
        )
    if isinstance(plan, Aggregate):
        keys = ", ".join(str(k) for k in plan.group_by) or "<all rows>"
        outs = ", ".join(str(o) for o in plan.outputs)
        lines = f"{pad}Aggregate[group by {keys}]({outs})"
        if plan.having is not None:
            lines += f"\n{pad}  having {plan.having}"
        return f"{lines}\n{to_text(plan.child, indent + 1)}"
    if isinstance(plan, Project):
        outs = ", ".join(str(o) for o in plan.outputs)
        return f"{pad}Project({outs})\n{to_text(plan.child, indent + 1)}"
    if isinstance(plan, OrderBy):
        keys = ", ".join(f"{name}{' DESC' if desc else ''}" for name, desc in plan.keys)
        return f"{pad}OrderBy({keys})\n{to_text(plan.child, indent + 1)}"
    if isinstance(plan, Limit):
        return f"{pad}Limit({plan.count})\n{to_text(plan.child, indent + 1)}"
    if isinstance(plan, SubqueryScan):
        return f"{pad}SubqueryScan({plan.alias})\n{to_text(plan.plan, indent + 1)}"
    raise TypeError(f"unknown plan node {type(plan).__name__}")
