"""Abstract syntax tree produced by the parser.

AST nodes carry their source offset (``pos``) so the planner can point
at the offending token when validation fails; ``pos`` never takes part
in equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Number(Expr):
    value: float
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class String(Expr):
    value: str
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class DateLit(Expr):
    """DATE 'yyyy-mm-dd' folded to days since the TPC-H epoch."""

    days: int
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class IntervalLit(Expr):
    """INTERVAL 'n' DAY folded to a day count."""

    days: int
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Column(Expr):
    name: str
    table: str | None = None
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Binary(Expr):
    """Arithmetic (+ - * /) or comparison (= < <= > >= <>) operator."""

    op: str
    left: Expr
    right: Expr
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Logical(Expr):
    """AND chain, flattened."""

    op: str
    terms: tuple[Expr, ...]
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Neg(Expr):
    arg: Expr
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Func(Expr):
    """Aggregate call: SUM/COUNT/AVG/MIN/MAX; ``star`` for COUNT(*)."""

    name: str
    args: tuple[Expr, ...]
    star: bool = False
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class ExtractYear(Expr):
    arg: Expr
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Between(Expr):
    arg: Expr
    low: Expr
    high: Expr
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class InSelect(Expr):
    arg: Expr
    select: "Select"
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Like(Expr):
    arg: Expr
    pattern: str
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class DerivedTable:
    select: "Select"
    alias: str
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    tables: tuple[TableRef | DerivedTable, ...]
    where: Expr | None = None
    group_by: tuple[Column, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    pos: int = field(default=-1, compare=False)
