"""One-call entry points: SQL text -> AST -> plan -> bound engine run.

This is the surface the examples, the query service and the tests use::

    select = parse_sql("SELECT SUM(l_quantity) FROM lineitem")
    plan   = plan_sql("SELECT ...")          # validated logical plan
    bound  = compile_sql("SELECT ...")       # plan lowered to an engine call
    result = execute_sql("SELECT ...", engine="Typer", db=db)
"""

from __future__ import annotations

from repro.obs import trace
from repro.sql import ast
from repro.sql import plan as ir
from repro.sql.lower import BoundQuery, lower
from repro.sql.parser import parse
from repro.sql.planner import Planner


def parse_sql(sql: str) -> ast.Select:
    """Parse one SELECT statement of the documented dialect."""
    with trace.span("parse"):
        return parse(sql)


def plan_sql(sql: str) -> ir.PlanNode:
    """Parse and bind ``sql`` into a schema-validated logical plan."""
    select = parse_sql(sql)
    with trace.span("plan"):
        return Planner().plan(select, sql)


def compile_sql(sql: str) -> BoundQuery:
    """Parse, plan and lower ``sql`` onto an engine entry point."""
    plan = plan_sql(sql)
    with trace.span("lower"):
        return lower(plan, sql)


def execute_sql(sql: str, engine, db, **options):
    """Compile ``sql`` and run it on ``engine`` against ``db``.

    ``engine`` is an :class:`~repro.engines.Engine` instance or a
    display name ("DBMS R", "DBMS C", "Typer", "Tectorwise");
    ``options`` (e.g. ``simd=True``, ``predicated=True``) pass through
    to the bound ``run_*`` method.  Returns the engine's
    :class:`~repro.engines.QueryResult`.
    """
    if isinstance(engine, str):
        from repro.engines import engine_by_name

        engine = engine_by_name(engine)
    return compile_sql(sql).execute(engine, db, **options)
