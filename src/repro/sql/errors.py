"""SQL frontend errors.

Every failure in the tokenize -> parse -> plan -> lower pipeline raises
:class:`SqlError`.  When the offending position in the source text is
known the error carries it and renders a caret snippet, so a rejected
query always tells the caller *where* it went wrong::

    SqlError: line 1, column 8: expected expression, found 'FROM'
      SELECT FROM lineitem;
             ^
"""

from __future__ import annotations


class SqlError(ValueError):
    """A SQL query that could not be tokenized, parsed, planned or
    lowered onto an engine, with position info when available."""

    def __init__(self, message: str, sql: str | None = None, pos: int | None = None):
        self.reason = message
        self.sql = sql
        self.pos = pos
        self.line: int | None = None
        self.column: int | None = None
        if sql is not None and pos is not None:
            clamped = max(0, min(pos, len(sql)))
            before = sql[:clamped]
            self.line = before.count("\n") + 1
            self.column = clamped - (before.rfind("\n") + 1) + 1
            source_line = sql.splitlines()[self.line - 1] if sql else ""
            message = (
                f"line {self.line}, column {self.column}: {message}\n"
                f"  {source_line}\n"
                f"  {' ' * (self.column - 1)}^"
            )
        super().__init__(message)


def err(message: str, sql: str | None = None, pos: int | None = None) -> SqlError:
    """Shorthand constructor used throughout the frontend."""
    return SqlError(message, sql=sql, pos=pos)
