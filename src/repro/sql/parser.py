"""Recursive-descent parser for the documented SQL dialect.

Grammar (keywords case-insensitive)::

    statement   := select ';'? EOF
    select      := SELECT item (',' item)*
                   FROM table_ref (',' table_ref)*
                   [WHERE expr] [GROUP BY column (',' column)*]
                   [HAVING expr] [ORDER BY order (',' order)*]
                   [LIMIT number]
    item        := expr [AS ident]
    table_ref   := ident [[AS] ident] | '(' select ')' [AS] ident
    order       := expr [ASC | DESC]
    expr        := cmp (AND cmp)*
    cmp         := add [(= | < | <= | > | >= | <> | !=) add
                        | BETWEEN add AND add
                        | IN '(' select ')'
                        | LIKE string]
    add         := mul (('+' | '-') mul)*
    mul         := unary (('*' | '/') unary)*
    unary       := '-' unary | primary
    primary     := number | string | DATE string | INTERVAL string DAY
                 | (SUM|COUNT|AVG|MIN|MAX) '(' ('*' | expr) ')'
                 | EXTRACT '(' YEAR FROM expr ')'
                 | ident ['.' ident] | '(' expr ')'

DATE literals fold to days since the TPC-H epoch (1992-01-01) and
INTERVAL literals to day counts, so date arithmetic constant-folds to
plain numbers during planning.
"""

from __future__ import annotations

import datetime

from repro.sql import ast
from repro.sql.errors import SqlError, err
from repro.sql.tokens import (
    KIND_EOF,
    KIND_IDENT,
    KIND_NUMBER,
    KIND_STRING,
    Token,
    tokenize,
)
from repro.tpch.schema import DATE_EPOCH

AGGREGATE_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")

_EPOCH = datetime.date.fromisoformat(DATE_EPOCH)


def _days_since_epoch(text: str, sql: str, pos: int) -> int:
    try:
        day = datetime.date.fromisoformat(text)
    except ValueError:
        raise err(f"malformed date {text!r} (expected yyyy-mm-dd)", sql, pos) from None
    return (day - _EPOCH).days


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token stream helpers ------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != KIND_EOF:
            self.index += 1
        return token

    def accept_keyword(self, *names: str) -> Token | None:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def accept_op(self, *ops: str) -> Token | None:
        if self.current.is_op(*ops):
            return self.advance()
        return None

    def expect_keyword(self, name: str) -> Token:
        token = self.accept_keyword(name)
        if token is None:
            raise self.failure(f"expected {name}")
        return token

    def expect_op(self, op: str) -> Token:
        token = self.accept_op(op)
        if token is None:
            raise self.failure(f"expected {op!r}")
        return token

    def expect_ident(self, what: str = "identifier") -> Token:
        if self.current.kind != KIND_IDENT:
            raise self.failure(f"expected {what}")
        return self.advance()

    def failure(self, expected: str) -> SqlError:
        token = self.current
        found = "end of input" if token.kind == KIND_EOF else repr(token.text)
        return err(f"{expected}, found {found}", self.sql, token.pos)

    # -- grammar -------------------------------------------------------
    def parse_statement(self) -> ast.Select:
        select = self.parse_select()
        self.accept_op(";")
        if self.current.kind != KIND_EOF:
            raise self.failure("expected end of statement")
        return select

    def parse_select(self) -> ast.Select:
        start = self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        tables = [self.parse_table_ref()]
        while self.accept_op(","):
            tables.append(self.parse_table_ref())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[ast.Column] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept_op(","):
                group_by.append(self.parse_column_ref())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.kind != KIND_NUMBER or float(token.value) != int(token.value):
                raise self.failure("expected integer LIMIT count")
            self.advance()
            limit = int(token.value)
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            pos=start.pos,
        )

    def parse_select_item(self) -> ast.SelectItem:
        pos = self.current.pos
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias after AS").text
        elif self.current.kind == KIND_IDENT:
            alias = self.advance().text
        return ast.SelectItem(expr=expr, alias=alias, pos=pos)

    def parse_table_ref(self) -> ast.TableRef | ast.DerivedTable:
        if self.accept_op("("):
            select = self.parse_select()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident("derived-table alias").text
            return ast.DerivedTable(select=select, alias=alias, pos=select.pos)
        token = self.expect_ident("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias after AS").text
        elif self.current.kind == KIND_IDENT:
            alias = self.advance().text
        return ast.TableRef(name=token.text, alias=alias, pos=token.pos)

    def parse_column_ref(self) -> ast.Column:
        token = self.expect_ident("column name")
        if self.accept_op("."):
            column = self.expect_ident("column name after '.'")
            return ast.Column(name=column.text, table=token.text, pos=token.pos)
        return ast.Column(name=token.text, pos=token.pos)

    def parse_order_item(self) -> ast.OrderItem:
        pos = self.current.pos
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending, pos=pos)

    def parse_expr(self) -> ast.Expr:
        pos = self.current.pos
        terms = [self.parse_comparison()]
        while self.accept_keyword("AND"):
            terms.append(self.parse_comparison())
        if len(terms) == 1:
            return terms[0]
        flat: list[ast.Expr] = []
        for term in terms:
            if isinstance(term, ast.Logical) and term.op == "AND":
                flat.extend(term.terms)
            else:
                flat.append(term)
        return ast.Logical(op="AND", terms=tuple(flat), pos=pos)

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        token = self.current
        if token.is_op("=", "<", "<=", ">", ">=", "<>", "!="):
            self.advance()
            right = self.parse_additive()
            op = "<>" if token.text == "!=" else token.text
            return ast.Binary(op=op, left=left, right=right, pos=token.pos)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(arg=left, low=low, high=high, pos=token.pos)
        if token.is_keyword("IN"):
            self.advance()
            self.expect_op("(")
            select = self.parse_select()
            self.expect_op(")")
            return ast.InSelect(arg=left, select=select, pos=token.pos)
        if token.is_keyword("LIKE"):
            self.advance()
            pattern = self.current
            if pattern.kind != KIND_STRING:
                raise self.failure("expected string pattern after LIKE")
            self.advance()
            return ast.Like(arg=left, pattern=str(pattern.value), pos=token.pos)
        return left

    def parse_additive(self) -> ast.Expr:
        expr = self.parse_multiplicative()
        while True:
            token = self.accept_op("+", "-")
            if token is None:
                return expr
            right = self.parse_multiplicative()
            expr = ast.Binary(op=token.text, left=expr, right=right, pos=token.pos)

    def parse_multiplicative(self) -> ast.Expr:
        expr = self.parse_unary()
        while True:
            token = self.accept_op("*", "/")
            if token is None:
                return expr
            right = self.parse_unary()
            expr = ast.Binary(op=token.text, left=expr, right=right, pos=token.pos)

    def parse_unary(self) -> ast.Expr:
        token = self.accept_op("-")
        if token is not None:
            return ast.Neg(arg=self.parse_unary(), pos=token.pos)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == KIND_NUMBER:
            self.advance()
            return ast.Number(value=float(token.value), pos=token.pos)
        if token.kind == KIND_STRING:
            self.advance()
            return ast.String(value=str(token.value), pos=token.pos)
        if token.is_keyword("DATE"):
            self.advance()
            literal = self.current
            if literal.kind != KIND_STRING:
                raise self.failure("expected date string after DATE")
            self.advance()
            days = _days_since_epoch(str(literal.value), self.sql, literal.pos)
            return ast.DateLit(days=days, pos=token.pos)
        if token.is_keyword("INTERVAL"):
            self.advance()
            literal = self.current
            if literal.kind != KIND_STRING:
                raise self.failure("expected quoted count after INTERVAL")
            self.advance()
            unit = self.current
            if not unit.is_keyword("DAY"):
                raise self.failure("expected DAY (the only supported interval unit)")
            self.advance()
            try:
                days = int(str(literal.value))
            except ValueError:
                raise err(
                    f"malformed interval count {literal.value!r}", self.sql, literal.pos
                ) from None
            return ast.IntervalLit(days=days, pos=token.pos)
        if token.is_keyword("EXTRACT"):
            self.advance()
            self.expect_op("(")
            self.expect_keyword("YEAR")
            self.expect_keyword("FROM")
            arg = self.parse_expr()
            self.expect_op(")")
            return ast.ExtractYear(arg=arg, pos=token.pos)
        if token.is_keyword(*AGGREGATE_FUNCS):
            self.advance()
            self.expect_op("(")
            if self.accept_op("*"):
                self.expect_op(")")
                if token.text != "COUNT":
                    raise err(f"{token.text}(*) is not valid SQL", self.sql, token.pos)
                return ast.Func(name="count", args=(), star=True, pos=token.pos)
            arg = self.parse_expr()
            self.expect_op(")")
            return ast.Func(name=token.text.lower(), args=(arg,), pos=token.pos)
        if token.kind == KIND_IDENT:
            return self.parse_column_ref()
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise self.failure("expected expression")


def parse(sql: str) -> ast.Select:
    """Parse one SELECT statement into an AST."""
    if not sql or not sql.strip():
        raise SqlError("empty statement")
    return _Parser(sql).parse_statement()
