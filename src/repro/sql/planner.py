"""Binder/planner: AST -> validated logical plan.

Resolves every column against :data:`repro.tpch.schema.SCHEMAS` (or a
derived table's output list), classifies WHERE conjuncts into
single-table filters and equi-join pairs, pushes filters below the
joins, builds a deterministic left-deep join tree, and wraps the result
in Aggregate/Project, OrderBy and Limit nodes.

Validation failures raise :class:`~repro.sql.errors.SqlError` carrying
the offending token's position.

Dictionary-encoded strings: the stored schema keeps ``p_name`` as the
integer category column ``p_namecat`` (see :mod:`repro.tpch.schema`),
so ``p_name LIKE '%green%'`` -- the only string predicate in the
documented workloads -- rewrites to ``p_namecat = GREEN_CATEGORY``.
"""

from __future__ import annotations

from repro.sql import ast
from repro.sql import plan as ir
from repro.sql.errors import SqlError, err
from repro.tpch.schema import (
    GREEN_CATEGORY,
    LINESTATUS_CODES,
    NATION_NAMES,
    REGION_NAMES,
    RETURNFLAG_CODES,
    SCHEMAS,
)

_COMPARISON_OPS = ("=", "<", "<=", ">", ">=", "<>")
_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

#: Columns that exist in TPC-H but are stored dictionary-encoded under
#: another name; they resolve only inside a rewritable LIKE predicate.
VIRTUAL_COLUMNS = {"part": ("p_name",)}

#: TPC-H columns that are functionally one-to-one with a stored column
#: (``c_name`` is textually derived from ``c_custkey``); they resolve
#: to the stored column but keep their own output name.
ALIAS_COLUMNS = {"customer": {"c_name": "c_custkey"}}

#: (table, virtual column, pattern) -> (stored column, code).
LIKE_REWRITES = {
    ("part", "p_name", "%green%"): ("p_namecat", float(GREEN_CATEGORY)),
}

#: Dictionary-encoded columns whose string equality predicates rewrite
#: to integer-code comparisons (the decode tables live in the schema,
#: so ``r_name = 'ASIA'`` becomes ``r_name = 2.0`` losslessly).
STRING_EQUALITY_CODES: dict[tuple[str, str], dict[str, float]] = {
    ("region", "r_name"): {
        name: float(code) for code, name in enumerate(REGION_NAMES)
    },
    ("nation", "n_name"): {
        name: float(code) for code, name in enumerate(NATION_NAMES)
    },
    ("lineitem", "l_returnflag"): {
        name: float(code) for name, code in RETURNFLAG_CODES.items()
    },
    ("lineitem", "l_linestatus"): {
        name: float(code) for name, code in LINESTATUS_CODES.items()
    },
}


class _Scope:
    """One FROM item: a base table or a derived table."""

    def __init__(self, name, columns, node, base_table=None, pos=-1):
        self.name = name
        self.columns = tuple(columns)
        self.node = node
        self.base_table = base_table  # underlying schema table, if any
        self.virtual = VIRTUAL_COLUMNS.get(base_table, ())
        self.aliases = ALIAS_COLUMNS.get(base_table, {})
        self.pos = pos
        self.filters: list[ir.Predicate] = []

    def filtered_node(self) -> ir.PlanNode:
        if self.filters:
            return ir.Filter(child=self.node, predicates=tuple(self.filters))
        return self.node


class Planner:
    """Plans one SELECT statement against the TPC-H schema."""

    def __init__(self, schemas=None):
        self.schemas = schemas if schemas is not None else SCHEMAS

    def plan(self, select: ast.Select, sql: str | None = None) -> ir.PlanNode:
        return _Binder(self, sql).bind(select)


class _Binder:
    def __init__(self, planner: Planner, sql: str | None):
        self.planner = planner
        self.sql = sql

    def error(self, message: str, pos: int = -1) -> SqlError:
        return err(message, self.sql, pos if pos >= 0 else None)

    # -- FROM ----------------------------------------------------------
    def bind(self, select: ast.Select) -> ir.PlanNode:
        scopes = [self._bind_table(table) for table in select.tables]
        seen: set[str] = set()
        for scope in scopes:
            if scope.name in seen:
                raise self.error(f"duplicate table {scope.name!r} in FROM", scope.pos)
            seen.add(scope.name)

        join_pairs = self._classify_where(select.where, scopes)
        tree = self._join_tree(scopes, join_pairs, select)
        outputs, has_agg = self._bind_outputs(select, scopes)
        group_refs = tuple(
            dict.fromkeys(self._resolve(col, scopes).ref for col in select.group_by)
        )
        having = self._bind_having(select.having, scopes, group_refs)

        if has_agg or group_refs or having is not None:
            self._validate_grouped(outputs, group_refs, select)
            node: ir.PlanNode = ir.Aggregate(
                child=tree, group_by=group_refs, outputs=outputs, having=having
            )
        else:
            node = ir.Project(child=tree, outputs=outputs)

        if select.order_by:
            keys = tuple(
                (self._order_key(item, outputs, scopes), item.descending)
                for item in select.order_by
            )
            node = ir.OrderBy(child=node, keys=keys)
        if select.limit is not None:
            node = ir.Limit(child=node, count=select.limit)
        return node

    def _bind_table(self, table) -> _Scope:
        if isinstance(table, ast.DerivedTable):
            subplan = self.bind(table.select)
            return _Scope(
                name=table.alias,
                columns=ir.output_names(subplan),
                node=ir.SubqueryScan(alias=table.alias, plan=subplan),
                pos=table.pos,
            )
        if table.name not in self.planner.schemas:
            raise self.error(
                f"unknown table {table.name!r}; available: "
                f"{sorted(self.planner.schemas)}",
                table.pos,
            )
        schema = self.planner.schemas[table.name]
        return _Scope(
            name=table.alias or table.name,
            columns=schema.column_names,
            node=ir.Scan(table=table.name),
            base_table=table.name,
            pos=table.pos,
        )

    # -- name resolution ----------------------------------------------
    def _resolve(self, column: ast.Column, scopes, virtual_ok=False) -> ir.ColumnExpr:
        matches = []
        for scope in scopes:
            if column.table is not None and column.table != scope.name:
                continue
            if column.name in scope.columns or column.name in scope.aliases:
                matches.append(scope)
            elif virtual_ok and column.name in scope.virtual:
                matches.append(scope)
        if not matches:
            if any(column.name in scope.virtual for scope in scopes):
                raise self.error(
                    f"column {column.name!r} is dictionary-encoded; only the "
                    f"documented LIKE predicate is supported on it",
                    column.pos,
                )
            where = (
                f"table {column.table!r}" if column.table is not None
                else "any FROM table"
            )
            raise self.error(f"unknown column {column.name!r} in {where}", column.pos)
        if len(matches) > 1:
            names = sorted(scope.name for scope in matches)
            raise self.error(
                f"ambiguous column {column.name!r} (in {names}); qualify it",
                column.pos,
            )
        scope = matches[0]
        stored = scope.aliases.get(column.name, column.name)
        return ir.ColumnExpr(ref=ir.ColRef(table=scope.name, column=stored))

    def _scope_of(self, name: str, scopes) -> _Scope:
        for scope in scopes:
            if scope.name == name:
                return scope
        raise KeyError(name)

    # -- scalar expressions -------------------------------------------
    def _convert(self, expr: ast.Expr, scopes, agg_ok: bool) -> ir.ScalarExpr:
        if isinstance(expr, ast.Number):
            return ir.ConstExpr(value=float(expr.value))
        if isinstance(expr, ast.DateLit):
            return ir.ConstExpr(value=float(expr.days))
        if isinstance(expr, ast.IntervalLit):
            return ir.ConstExpr(value=float(expr.days))
        if isinstance(expr, ast.String):
            raise self.error(
                "string literals are only valid in LIKE, DATE and INTERVAL",
                expr.pos,
            )
        if isinstance(expr, ast.Column):
            return self._resolve(expr, scopes)
        if isinstance(expr, ast.Neg):
            arg = self._convert(expr.arg, scopes, agg_ok)
            if isinstance(arg, ir.ConstExpr):
                return ir.ConstExpr(value=-arg.value)
            return ir.Arith(op="*", left=ir.ConstExpr(value=-1.0), right=arg)
        if isinstance(expr, ast.Binary):
            if expr.op in _COMPARISON_OPS:
                raise self.error("comparison not allowed in a value expression", expr.pos)
            left = self._convert(expr.left, scopes, agg_ok)
            right = self._convert(expr.right, scopes, agg_ok)
            if isinstance(left, ir.ConstExpr) and isinstance(right, ir.ConstExpr):
                folded = {
                    "+": left.value + right.value,
                    "-": left.value - right.value,
                    "*": left.value * right.value,
                    "/": left.value / right.value if right.value else float("nan"),
                }[expr.op]
                return ir.ConstExpr(value=float(folded))
            return ir.Arith(op=expr.op, left=left, right=right)
        if isinstance(expr, ast.Func):
            if not agg_ok:
                raise self.error(
                    f"aggregate {expr.name.upper()}() is not allowed here", expr.pos
                )
            if expr.star:
                return ir.AggCall(func="count", arg=None)
            arg = self._convert(expr.args[0], scopes, agg_ok=False)
            return ir.AggCall(func=expr.name, arg=arg)
        if isinstance(expr, ast.ExtractYear):
            return ir.YearOf(arg=self._convert(expr.arg, scopes, agg_ok=False))
        if isinstance(expr, (ast.Between, ast.InSelect, ast.Like, ast.Logical)):
            raise self.error("predicate not allowed in a value expression", expr.pos)
        raise self.error(f"unsupported expression {type(expr).__name__}", getattr(expr, "pos", -1))

    # -- WHERE ---------------------------------------------------------
    def _classify_where(self, where, scopes):
        """Distribute conjuncts into per-scope filters; return join pairs."""
        join_pairs: list[tuple[ir.ColRef, ir.ColRef]] = []
        if where is None:
            return join_pairs
        terms = where.terms if isinstance(where, ast.Logical) and where.op == "AND" else (where,)
        for term in terms:
            self._classify_term(term, scopes, join_pairs)
        return join_pairs

    def _classify_term(self, term, scopes, join_pairs) -> None:
        if isinstance(term, ast.Binary) and term.op in _COMPARISON_OPS:
            if term.op in ("=", "<>") and (
                isinstance(term.left, ast.String) != isinstance(term.right, ast.String)
            ):
                self._push_string_equality(term, scopes)
                return
            left = self._convert(term.left, scopes, agg_ok=False)
            right = self._convert(term.right, scopes, agg_ok=False)
            if (
                term.op == "="
                and isinstance(left, ir.ColumnExpr)
                and isinstance(right, ir.ColumnExpr)
                and left.ref.table != right.ref.table
            ):
                join_pairs.append((left.ref, right.ref))
                return
            op = term.op
            if isinstance(left, ir.ConstExpr) and not isinstance(right, ir.ConstExpr):
                left, right, op = right, left, _MIRROR[op]
            self._push_filter(ir.Compare(left=left, op=op, right=right), term.pos, scopes)
            return
        if isinstance(term, ast.Between):
            arg = self._convert(term.arg, scopes, agg_ok=False)
            low = self._convert(term.low, scopes, agg_ok=False)
            high = self._convert(term.high, scopes, agg_ok=False)
            self._push_filter(ir.Compare(left=arg, op=">=", right=low), term.pos, scopes)
            self._push_filter(ir.Compare(left=arg, op="<=", right=high), term.pos, scopes)
            return
        if isinstance(term, ast.Like):
            self._push_like(term, scopes)
            return
        if isinstance(term, ast.InSelect):
            arg = self._convert(term.arg, scopes, agg_ok=False)
            if not isinstance(arg, ir.ColumnExpr):
                raise self.error("IN (subquery) needs a plain column on the left", term.pos)
            subplan = self.bind(term.select)
            names = ir.output_names(subplan)
            if len(names) != 1:
                raise self.error(
                    f"IN subquery must produce one column, got {len(names)}", term.pos
                )
            scope = self._scope_of(arg.ref.table, scopes)
            scope.filters.append(ir.InSubquery(expr=arg, subplan=subplan))
            return
        raise self.error(
            "WHERE supports AND-ed comparisons, BETWEEN, LIKE and IN (subquery)",
            getattr(term, "pos", -1),
        )

    def _push_string_equality(self, term: ast.Binary, scopes) -> None:
        """``col = 'NAME'`` on a dictionary-encoded column -> the exact
        integer-code comparison (see :data:`STRING_EQUALITY_CODES`)."""
        if isinstance(term.right, ast.String):
            column_side, literal = term.left, term.right
        else:
            column_side, literal = term.right, term.left
        if not isinstance(column_side, ast.Column):
            raise self.error(
                "string comparison needs a plain column on one side", term.pos
            )
        resolved = self._resolve(column_side, scopes)
        scope = self._scope_of(resolved.ref.table, scopes)
        codes = STRING_EQUALITY_CODES.get((scope.base_table, resolved.ref.column))
        if codes is None:
            supported = sorted(col for _, col in STRING_EQUALITY_CODES)
            raise self.error(
                f"column {resolved.ref.column!r} has no string dictionary; "
                f"string equality is supported on: {supported}",
                term.pos,
            )
        code = codes.get(literal.value)
        if code is None:
            raise self.error(
                f"unknown value {literal.value!r} for "
                f"{resolved.ref.column!r}; known values: {sorted(codes)}",
                literal.pos,
            )
        scope.filters.append(
            ir.Compare(left=resolved, op=term.op, right=ir.ConstExpr(value=code))
        )

    def _push_like(self, term: ast.Like, scopes) -> None:
        if not isinstance(term.arg, ast.Column):
            raise self.error("LIKE needs a plain column on the left", term.pos)
        resolved = self._resolve(term.arg, scopes, virtual_ok=True)
        scope = self._scope_of(resolved.ref.table, scopes)
        key = (scope.base_table, resolved.ref.column, term.pattern)
        rewrite = LIKE_REWRITES.get(key)
        if rewrite is None:
            supported = sorted(
                f"{col} LIKE '{pat}'" for _, col, pat in LIKE_REWRITES
            )
            raise self.error(
                f"unsupported LIKE predicate on {resolved.ref.column!r}; the "
                f"dictionary-encoded schema supports: {supported}",
                term.pos,
            )
        stored, code = rewrite
        scope.filters.append(
            ir.Compare(
                left=ir.ColumnExpr(ref=ir.ColRef(table=scope.name, column=stored)),
                op="=",
                right=ir.ConstExpr(value=code),
            )
        )

    def _push_filter(self, predicate: ir.Compare, pos: int, scopes) -> None:
        tables = _tables_in(predicate.left) | _tables_in(predicate.right)
        if len(tables) != 1:
            raise self.error(
                "non-equi predicates across tables are not supported", pos
            )
        self._scope_of(tables.pop(), scopes).filters.append(predicate)

    # -- joins ---------------------------------------------------------
    def _join_tree(self, scopes, join_pairs, select: ast.Select) -> ir.PlanNode:
        remaining = list(scopes)
        first = remaining.pop(0)
        tree = first.filtered_node()
        joined = {first.name}
        pairs_left = list(join_pairs)
        while remaining:
            chosen = None
            for scope in remaining:
                oriented = _pairs_for(scope.name, joined, pairs_left)
                if oriented:
                    chosen = (scope, oriented)
                    break
            if chosen is None:
                names = sorted(scope.name for scope in remaining)
                raise self.error(
                    f"tables {names} have no equi-join predicate connecting "
                    f"them to the rest of the FROM clause (cross joins are "
                    f"not supported)",
                    select.pos,
                )
            scope, oriented = chosen
            tree = ir.Join(left=tree, right=scope.filtered_node(), pairs=tuple(oriented))
            joined.add(scope.name)
            remaining.remove(scope)
            pairs_left = [
                pair for pair in pairs_left
                if not ({pair[0].table, pair[1].table} <= joined)
            ]
        if pairs_left:
            raise self.error("unusable join predicate", select.pos)
        return tree

    # -- outputs / grouping -------------------------------------------
    def _bind_outputs(self, select: ast.Select, scopes):
        outputs = []
        has_agg = False
        for index, item in enumerate(select.items, start=1):
            expr = self._convert(item.expr, scopes, agg_ok=True)
            if _has_agg(expr):
                has_agg = True
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ast.Column):
                name = item.expr.name
            else:
                name = f"col{index}"
            outputs.append(ir.NamedExpr(name=name, expr=expr))
        return tuple(outputs), has_agg

    def _bind_having(self, having, scopes, group_refs):
        if having is None:
            return None
        if not (isinstance(having, ast.Binary) and having.op in _COMPARISON_OPS):
            raise self.error("HAVING must be a single comparison", getattr(having, "pos", -1))
        left = self._convert(having.left, scopes, agg_ok=True)
        right = self._convert(having.right, scopes, agg_ok=True)
        predicate = ir.Compare(left=left, op=having.op, right=right)
        for side in (left, right):
            for ref in _bare_columns(side):
                if ref not in group_refs:
                    raise self.error(
                        f"HAVING references non-grouped column {ref}", having.pos
                    )
        return predicate

    def _validate_grouped(self, outputs, group_refs, select: ast.Select) -> None:
        group_set = set(group_refs)
        for item, output in zip(select.items, outputs):
            for ref in _bare_columns(output.expr):
                if ref not in group_set:
                    raise self.error(
                        f"column {ref} must appear in GROUP BY or inside an "
                        f"aggregate",
                        item.pos,
                    )

    def _order_key(self, item: ast.OrderItem, outputs, scopes) -> str:
        if not isinstance(item.expr, ast.Column):
            raise self.error("ORDER BY supports plain columns/aliases only", item.pos)
        name = item.expr.name
        names = [out.name for out in outputs]
        if item.expr.table is None and name in names:
            return name
        resolved = self._resolve(item.expr, scopes)
        for out in outputs:
            if out.expr == resolved:
                return out.name
        raise self.error(
            f"ORDER BY column {name!r} is not in the select list", item.pos
        )


def _pairs_for(candidate: str, joined: set[str], pairs):
    """Join pairs connecting ``candidate`` to the joined tree, oriented
    (tree side, candidate side), in WHERE order."""
    oriented = []
    for left, right in pairs:
        if left.table in joined and right.table == candidate:
            oriented.append((left, right))
        elif right.table in joined and left.table == candidate:
            oriented.append((right, left))
    return oriented


# ----------------------------------------------------------------------
# Expression walks
# ----------------------------------------------------------------------


def _tables_in(expr: ir.ScalarExpr) -> set[str]:
    if isinstance(expr, ir.ColumnExpr):
        return {expr.ref.table}
    if isinstance(expr, ir.Arith):
        return _tables_in(expr.left) | _tables_in(expr.right)
    if isinstance(expr, ir.YearOf):
        return _tables_in(expr.arg)
    if isinstance(expr, ir.AggCall):
        return _tables_in(expr.arg) if expr.arg is not None else set()
    return set()


def _has_agg(expr: ir.ScalarExpr) -> bool:
    if isinstance(expr, ir.AggCall):
        return True
    if isinstance(expr, ir.Arith):
        return _has_agg(expr.left) or _has_agg(expr.right)
    if isinstance(expr, ir.YearOf):
        return _has_agg(expr.arg)
    return False


def _bare_columns(expr: ir.ScalarExpr) -> set[ir.ColRef]:
    """Column refs used *outside* aggregate arguments."""
    if isinstance(expr, ir.ColumnExpr):
        return {expr.ref}
    if isinstance(expr, ir.Arith):
        return _bare_columns(expr.left) | _bare_columns(expr.right)
    if isinstance(expr, ir.YearOf):
        return _bare_columns(expr.arg)
    return set()
