"""Lowering: logical plan -> a bound engine entry point.

The engines execute hand-wired physical plans (``run_projection``,
``run_selection``, ``run_join``, ``run_groupby``, ``run_tpch``); this
module recognises which of those paths an incoming logical plan
computes and binds the call.  Recognition is exact, in two layers:

* **Template equality** -- the four TPC-H queries, the three join
  sizes, the group-by and the four projection degrees are planned once
  from their documented SQL (:mod:`repro.tpch.sql`) and matched by
  structural plan equality, so anything the documentation says is
  runnable *is* runnable.
* **Structural matching** -- the micro-benchmarks additionally match by
  shape with free parameters (projection degree, per-column selection
  thresholds, join size), so e.g. a selection with thresholds taken
  from a different scale factor still lowers.

* **Compilation fallback** -- a plan matching no hand-wired template is
  handed to :mod:`repro.compile`, which turns any supported
  select/join/group/aggregate shape into a fused vectorized kernel
  program executed through ``Engine.run_compiled``.  Only when the
  compiler also declines does lowering raise.

A plan that matches nothing raises :class:`SqlError` describing the
full supported surface and the nearest profiled workload: the engines
model fixed workloads plus the compilable fragment, and pretending
otherwise would silently profile the wrong thing.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field

from repro.sql import plan as ir
from repro.sql.errors import SqlError, err
from repro.tpch.schema import PROJECTION_COLUMNS, SELECTION_PREDICATE_COLUMNS

#: Engine methods a plan may bind to.
BINDABLE_METHODS = (
    "run_projection",
    "run_selection",
    "run_join",
    "run_groupby",
    "run_tpch",
    "run_compiled",
)


@dataclass(frozen=True)
class BoundQuery:
    """A logical plan resolved to one engine method and its arguments.

    ``kwargs`` is a tuple of (name, value) pairs so bound queries stay
    hashable (the serve layer caches them per normalized SQL text).
    """

    workload: str
    method: str
    args: tuple = ()
    kwargs: tuple = ()
    plan: ir.PlanNode | None = field(default=None, compare=False)
    #: Conjunctive predicate summary extracted from the plan's Filter
    #: nodes (see :func:`repro.core.pruning.plan_atoms`); the serve
    #: layer evaluates it against zone maps before dispatch.  Excluded
    #: from equality like ``plan``: two bindings of the same workload
    #: are the same query.
    atoms: tuple = field(default=(), compare=False)
    #: Rollup routing profile
    #: (:class:`repro.rollup.router.QueryProfile`) when the bound call's
    #: value can in principle be assembled from pre-aggregated partials;
    #: None for shapes no rollup can answer.  Derived metadata, so
    #: excluded from equality like ``plan`` and ``atoms``.
    rollup_profile: object | None = field(default=None, compare=False)

    def call_kwargs(self) -> dict:
        return dict(self.kwargs)

    def execute(self, engine, db, **overrides):
        """Run the bound path on ``engine`` against ``db``.

        ``overrides`` merge over the bound keyword arguments, so request
        options like ``simd=True`` or ``predicated=True`` pass through
        to engines that accept them.
        """
        merged = self.call_kwargs()
        merged.update(overrides)
        return getattr(engine, self.method)(db, *self.args, **merged)

    def __str__(self) -> str:
        parts = [repr(a) for a in self.args]
        # The compiled path carries the whole logical plan as an
        # argument; elide it (the plan is printed separately everywhere
        # a binding is shown).
        parts += [
            f"{k}=<plan>" if k == "plan" else f"{k}={v!r}"
            for k, v in self.kwargs
        ]
        return f"{self.workload}: {self.method}({', '.join(parts)})"


# ----------------------------------------------------------------------
# Template plans from the documented SQL
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=1)
def _template_index() -> dict[ir.PlanNode, BoundQuery]:
    """Stripped plan -> bound call, for every documented workload whose
    SQL has no data-dependent literals (selection thresholds are the
    one exception; they match structurally below)."""
    # Imported here: tpch.sql and the parser/planner sit above this
    # module in the package graph only at call time, never at import.
    from repro.sql.parser import parse
    from repro.sql.planner import Planner
    from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql

    planner = Planner()

    def planned(sql: str) -> ir.PlanNode:
        return ir.strip_decorations(planner.plan(parse(sql), sql))

    index: dict[ir.PlanNode, BoundQuery] = {}
    for query_id, sql in TPCH_SQL.items():
        index[planned(sql)] = BoundQuery(
            workload=f"tpch-{query_id}", method="run_tpch", args=(query_id,)
        )
    for size, sql in JOIN_SQL.items():
        index[planned(sql)] = BoundQuery(
            workload=f"join-{size}", method="run_join", args=(size,)
        )
    for degree in range(1, len(PROJECTION_COLUMNS) + 1):
        index[planned(projection_sql(degree))] = BoundQuery(
            workload=f"projection-{degree}", method="run_projection", args=(degree,)
        )
    index[planned(GROUPBY_SQL)] = BoundQuery(
        workload="groupby", method="run_groupby"
    )
    return index


# ----------------------------------------------------------------------
# Structural matchers (micro-benchmarks with free parameters)
# ----------------------------------------------------------------------


def _sum_of_columns(outputs: tuple[ir.NamedExpr, ...]) -> tuple[str, ...] | None:
    """Column names if ``outputs`` is a single SUM over a + of columns."""
    if len(outputs) != 1:
        return None
    expr = outputs[0].expr
    if not (isinstance(expr, ir.AggCall) and expr.func == "sum" and expr.arg is not None):
        return None
    columns = []
    for term in ir.flatten_sum(expr.arg):
        if not isinstance(term, ir.ColumnExpr):
            return None
        columns.append(term.ref.column)
    return tuple(columns)


def _match_projection(core: ir.PlanNode) -> BoundQuery | None:
    if not (
        isinstance(core, ir.Aggregate)
        and not core.group_by
        and core.having is None
        and core.child == ir.Scan(table="lineitem")
    ):
        return None
    columns = _sum_of_columns(core.outputs)
    for degree in range(1, len(PROJECTION_COLUMNS) + 1):
        if columns == PROJECTION_COLUMNS[:degree]:
            return BoundQuery(
                workload=f"projection-{degree}",
                method="run_projection",
                args=(degree,),
            )
    return None


def _match_selection(core: ir.PlanNode) -> BoundQuery | None:
    if not (
        isinstance(core, ir.Aggregate)
        and not core.group_by
        and core.having is None
        and isinstance(core.child, ir.Filter)
        and core.child.child == ir.Scan(table="lineitem")
    ):
        return None
    if _sum_of_columns(core.outputs) != PROJECTION_COLUMNS:
        return None
    if len(core.child.predicates) != len(SELECTION_PREDICATE_COLUMNS):
        return None
    thresholds: dict[str, float] = {}
    for predicate in core.child.predicates:
        if not (
            isinstance(predicate, ir.Compare)
            and predicate.op == "<="
            and isinstance(predicate.left, ir.ColumnExpr)
            and isinstance(predicate.right, ir.ConstExpr)
        ):
            return None
        thresholds[predicate.left.ref.column] = predicate.right.value
    if tuple(sorted(thresholds)) != tuple(sorted(SELECTION_PREDICATE_COLUMNS)):
        return None
    ordered = tuple(thresholds[column] for column in SELECTION_PREDICATE_COLUMNS)
    return BoundQuery(
        workload="selection",
        method="run_selection",
        kwargs=(("selectivity", None), ("thresholds", ordered)),
    )


def _match_join(core: ir.PlanNode) -> BoundQuery | None:
    from repro.engines.base import JOIN_SPECS

    if not (
        isinstance(core, ir.Aggregate)
        and not core.group_by
        and core.having is None
        and isinstance(core.child, ir.Join)
        and isinstance(core.child.left, ir.Scan)
        and isinstance(core.child.right, ir.Scan)
        and len(core.child.pairs) == 1
    ):
        return None
    columns = _sum_of_columns(core.outputs)
    if columns is None:
        return None
    join = core.child
    tables = {join.left.table, join.right.table}
    (left_key, right_key), = join.pairs
    keys = {left_key.column, right_key.column}
    for size, spec in JOIN_SPECS.items():
        if (
            tables == {spec.build_table, spec.probe_table}
            and keys == {spec.build_key, spec.probe_key}
            and columns == spec.sum_columns
        ):
            return BoundQuery(
                workload=f"join-{size}", method="run_join", args=(size,)
            )
    return None


def _match_groupby(core: ir.PlanNode) -> BoundQuery | None:
    if not (
        isinstance(core, ir.Aggregate)
        and core.having is None
        and core.child == ir.Scan(table="lineitem")
    ):
        return None
    group_columns = tuple(ref.column for ref in core.group_by)
    if group_columns != ("l_partkey", "l_returnflag"):
        return None
    aggregates = [
        out.expr for out in core.outputs if isinstance(out.expr, ir.AggCall)
    ]
    if len(aggregates) != 1:
        return None
    agg = aggregates[0]
    if not (
        agg.func == "sum"
        and agg.arg == ir.ColumnExpr(ref=ir.ColRef(table="lineitem", column="l_extendedprice"))
    ):
        return None
    return BoundQuery(workload="groupby", method="run_groupby")


_MATCHERS = (_match_projection, _match_selection, _match_join, _match_groupby)


#: ``run_tpch`` query id -> per-query runner, mirroring
#: :meth:`Engine.run_tpch` dispatch for routing-profile purposes.
_TPCH_RUNNERS = {"Q1": "run_q1", "Q6": "run_q6", "Q9": "run_q9", "Q18": "run_q18"}


def _rollup_profile(method: str, args: tuple, kwargs: tuple):
    """Routing profile of a bound call (None when unroutable).

    ``run_tpch`` resolves to its per-query runner and positional
    projection degrees become the keyword :func:`profile_for` expects,
    so the profile describes the call the engine will actually execute.
    """
    from repro.rollup.router import profile_for

    call_kwargs = dict(kwargs)
    if method == "run_tpch":
        method = _TPCH_RUNNERS.get(args[0], method) if args else method
    elif method == "run_projection" and args:
        call_kwargs.setdefault("degree", args[0])
    return profile_for(method, call_kwargs)


def lower(plan: ir.PlanNode, sql: str | None = None) -> BoundQuery:
    """Bind a logical plan onto an engine entry point, or raise."""
    from repro.core.pruning import plan_atoms

    core = ir.strip_decorations(plan)
    template = _template_index().get(core)
    if template is not None:
        return BoundQuery(
            workload=template.workload,
            method=template.method,
            args=template.args,
            kwargs=template.kwargs,
            plan=plan,
            atoms=plan_atoms(core),
            rollup_profile=_rollup_profile(
                template.method, template.args, template.kwargs
            ),
        )
    for matcher in _MATCHERS:
        bound = matcher(core)
        if bound is not None:
            return BoundQuery(
                workload=bound.workload,
                method=bound.method,
                args=bound.args,
                kwargs=bound.kwargs,
                plan=plan,
                atoms=plan_atoms(core),
                rollup_profile=_rollup_profile(
                    bound.method, bound.args, bound.kwargs
                ),
            )
    compile_reason = None
    from repro.compile import CompileError, compile_enabled

    if compile_enabled():
        from repro.compile.program import compiled_program

        try:
            program = compiled_program(plan)
        except CompileError as exc:
            compile_reason = str(exc)
        else:
            # Compiled programs partition their own driving table and
            # merge exactly, but they stay outside zone-map pruning and
            # rollup routing: atoms/profile describe the hand-wired
            # templates' access paths, not an arbitrary kernel DAG.
            return BoundQuery(
                workload=program.workload,
                method="run_compiled",
                kwargs=(("plan", plan),),
                plan=plan,
            )
    else:
        compile_reason = "plan compilation is disabled (REPRO_COMPILE=0)"
    raise _no_binding(plan, sql, compile_reason)


def _plan_features(node) -> frozenset[str]:
    """Structural fingerprint of a plan for nearest-workload hints:
    tables scanned, columns referenced, aggregate functions, and coarse
    shape markers (join / grouped)."""
    features: set[str] = set()

    def walk(obj) -> None:
        if isinstance(obj, ir.ColRef):
            features.add(f"table:{obj.table}")
            features.add(f"column:{obj.table}.{obj.column}")
            return
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            if isinstance(obj, ir.Scan):
                features.add(f"table:{obj.table}")
            elif isinstance(obj, ir.Join):
                features.add("shape:join")
            elif isinstance(obj, ir.Aggregate):
                features.add("shape:grouped" if obj.group_by else "shape:global")
            elif isinstance(obj, ir.AggCall):
                features.add(f"agg:{obj.func}")
            for field_ in dataclasses.fields(obj):
                walk(getattr(obj, field_.name))
        elif isinstance(obj, (tuple, list)):
            for item in obj:
                walk(item)

    walk(node)
    return frozenset(features)


@dataclass(frozen=True)
class PartitionBinding:
    """How one bound call maps onto horizontally partitioned data.

    ``table`` is the table whose rows the morsel executor partitions
    for this call (:meth:`Engine.partition_rows` uses the same rule);
    ``referenced`` is every table the call reads at all.  A
    scatter-gather coordinator scatters a call only when ``table`` is
    the sharded fact table; a call that never touches the fact table
    runs on any single shard (dimensions are fully replicated); a call
    that reads the fact table without driving over it cannot be
    scattered safely and is rejected with a clean error.
    """

    table: str | None
    referenced: frozenset


def partition_binding(bound: BoundQuery) -> PartitionBinding:
    """Derive the :class:`PartitionBinding` for a lowered query."""
    referenced: set[str] = set()
    if bound.plan is not None:
        referenced = {
            feature.split(":", 1)[1]
            for feature in _plan_features(bound.plan)
            if feature.startswith("table:")
        }
    method = bound.method
    kwargs = dict(bound.kwargs)
    if method == "run_tpch" and bound.args:
        method = _TPCH_RUNNERS.get(bound.args[0], method)
    if method == "run_join":
        from repro.engines.base import JOIN_SPECS

        size = bound.args[0] if bound.args else kwargs.get("size")
        spec = JOIN_SPECS.get(size)
        table = spec.probe_table if spec is not None else None
        if spec is not None:
            referenced.update((spec.build_table, spec.probe_table))
    elif method == "run_compiled":
        from repro.compile.program import compiled_program

        table = compiled_program(kwargs["plan"]).driving
    else:
        # Every remaining morsel-capable runner partitions lineitem
        # (projection/selection/groupby micro-benchmarks and the TPC-H
        # runners all drive the fact-table scan).
        table = "lineitem"
        referenced.add("lineitem")
        if method == "run_q9":
            referenced.update(("part", "supplier", "partsupp", "orders", "nation"))
        elif method == "run_q18":
            referenced.update(("orders", "customer"))
    if table is not None:
        referenced.add(table)
    return PartitionBinding(table=table, referenced=frozenset(referenced))


def _nearest_workload(core: ir.PlanNode) -> str | None:
    """The documented workload whose plan shares the most structure
    with ``core`` (Jaccard overlap of :func:`_plan_features`), as a
    'did you mean' hint.  None when nothing overlaps at all."""
    target = _plan_features(core)
    if not target:
        return None
    best_name, best_score = None, 0.0
    for template_plan, bound in sorted(
        _template_index().items(), key=lambda item: item[1].workload
    ):
        candidate = _plan_features(template_plan)
        union = target | candidate
        score = len(target & candidate) / len(union) if union else 0.0
        if score > best_score:
            best_name, best_score = bound.workload, score
    return best_name


def _no_binding(
    plan: ir.PlanNode, sql: str | None, compile_reason: str | None = None
) -> SqlError:
    """Describe the *full* supported surface: documented templates,
    parameterised micro-benchmark shapes, the per-query TPC-H runners
    behind ``run_tpch``, and the compiled fallback."""
    core = ir.strip_decorations(plan)
    known = sorted({bound.workload for bound in _template_index().values()})
    runners = ", ".join(
        f"{query_id}->{runner}" for query_id, runner in sorted(_TPCH_RUNNERS.items())
    )
    lines = [
        "query is valid but does not match any profiled workload and "
        "could not be compiled.",
        f"- documented templates: {', '.join(known)}",
        "- parameterised shapes: projection degree 1-"
        f"{len(PROJECTION_COLUMNS)}, selection with free thresholds over "
        f"{', '.join(SELECTION_PREDICATE_COLUMNS)}, the three join sizes, "
        "the lineitem group-by",
        f"- TPC-H runners: {runners}",
        "- compiled fallback: single-block select / equi-join / "
        "group-by / SUM-COUNT-AVG aggregate plans over the stored "
        "schema lower to fused kernel programs (run_compiled)",
    ]
    if compile_reason:
        lines.append(f"- the compiler declined this plan: {compile_reason}")
    nearest = _nearest_workload(core)
    if nearest:
        lines.append(f"- nearest profiled workload by plan structure: {nearest}")
    lines.append(f"plan was:\n{ir.to_text(plan)}")
    return err("\n".join(lines), sql, None)
