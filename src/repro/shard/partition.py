"""Hash/range sharding of the fact table into per-shard databases.

Only ``lineitem`` (the fact table every morsel-capable runner drives
over) is split; dimension tables are replicated into every shard by
reference, so joins and reference finishers see exactly the data a
single node would.

Two invariants make sharded execution bit-identical to single-node:

- **Exactness does not depend on row placement.**  Every merged
  aggregate is an :class:`~repro.core.exactsum.ExactSum` (or an
  integer count), and exact merging is associative and commutative --
  so hash sharding, which *permutes* rows across shards, still
  reproduces the single-scan value to the last bit.
- **Code spaces are inherited from the parent.**  Shard fact columns
  re-encode the subset against the parent dictionary (and the parent
  FoR reference/width), never a fresh one: compiled group keys travel
  as dictionary codes and are decoded against static per-column
  dictionaries, so a shard-local dictionary would silently renumber
  groups.  RLE re-encodes fresh (it is positional and decodes back to
  values), raw columns stay raw.
"""

from __future__ import annotations

import numpy as np

from repro.storage.catalog import Database
from repro.storage.column import ColumnTable
from repro.storage.encoding import (
    DictionaryEncoding,
    EncodedColumn,
    ForBitPackEncoding,
    RLEEncoding,
)

SHARD_MODES = ("hash", "range")
FACT_TABLE = "lineitem"
DEFAULT_SHARD_KEY = "l_orderkey"


def _mix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit finalizer (splitmix64) so shard ownership
    is well spread even for sequential keys, on every platform."""
    h = values.astype(np.uint64, copy=True)
    h += np.uint64(0x9E3779B97F4A7C15)
    h ^= h >> np.uint64(30)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(27)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    return h


def shard_assignment(
    db: Database,
    n_shards: int,
    mode: str = "hash",
    fact_table: str = FACT_TABLE,
    key_column: str = DEFAULT_SHARD_KEY,
) -> list[np.ndarray]:
    """Sorted row-index array per shard, a partition of ``arange(n)``.

    ``range`` slices the table into contiguous near-equal chunks (rows
    keep their physical clustering, so zone maps and RLE stay sharp);
    ``hash`` assigns each row by a mixed hash of ``key_column`` (the
    distribution-friendly choice: co-keyed rows land together).  Hash
    indices are kept sorted within each shard so shard-local scans
    still stream in parent order.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_rows = db.table(fact_table).n_rows
    if mode == "range" or n_shards == 1:
        bounds = [round(i * n_rows / n_shards) for i in range(n_shards + 1)]
        return [
            np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
            for i in range(n_shards)
        ]
    keys = np.asarray(db.table(fact_table)[key_column]).astype(np.int64)
    owner = _mix64(keys) % np.uint64(n_shards)
    return [
        np.flatnonzero(owner == np.uint64(shard_id)).astype(np.int64)
        for shard_id in range(n_shards)
    ]


def _shard_column(table: ColumnTable, name: str, indices: np.ndarray):
    """The shard's slice of one fact column, parent code space intact."""
    encoded = table.encoding(name)
    if encoded is None:
        return np.asarray(table[name])[indices]
    values = encoded.values[indices]
    encoding = encoded.encoding
    if isinstance(encoding, DictionaryEncoding):
        new = DictionaryEncoding.encode(values, dictionary=encoding.dictionary)
    elif isinstance(encoding, ForBitPackEncoding):
        # The parent reference is the global minimum, so every shard
        # value re-packs losslessly at the parent's width.
        new = ForBitPackEncoding.encode(
            values, reference=encoding.reference, bits=encoding.bits
        )
    elif isinstance(encoding, RLEEncoding):
        new = RLEEncoding.encode(values)
    else:
        return values
    if new is None:
        return values
    return EncodedColumn(name, new, encoded.dtype)


def shard_database(
    db: Database,
    indices: np.ndarray,
    shard_id: int,
    n_shards: int,
    mode: str,
    fact_table: str = FACT_TABLE,
) -> Database:
    """One shard: the fact-table subset plus every dimension replicated.

    Rollups attached to the parent are rebuilt *per shard* (their SUM
    partials are ExactSum units, so shard rollups merge exactly across
    nodes just like scans do).  The shard database gets a stable
    derived ``cache_key`` so per-database caches (zone maps, compiled
    programs, group tables) never collide with the parent's.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) == 0:
        raise ValueError(
            f"shard {shard_id} of {n_shards} ({mode}) owns no {fact_table} rows; "
            "use fewer shards for this scale factor"
        )
    shard = Database(
        name=f"{db.name}-shard{shard_id}", scale_factor=db.scale_factor
    )
    parent_fact = db.table(fact_table)
    fact = ColumnTable(fact_table)
    for column_name in parent_fact.column_names:
        fact.add_column(column_name, _shard_column(parent_fact, column_name, indices))
    shard.add_table(fact)
    for table_name in db.table_names:
        if table_name != fact_table:
            shard.add_table(db.table(table_name))
    # Identity last: add_table resets it, and shard caches must key on
    # (parent identity, shard coordinates), not a fresh uid per build.
    shard.cache_key = f"{db.identity}/shard-{mode}-{shard_id}of{n_shards}"
    for rollup_name in getattr(db, "rollup_names", ()):
        parent_rollup = db.rollup(rollup_name)
        if parent_rollup.base_table != fact_table:
            shard.add_rollup(parent_rollup)
            continue
        from repro.rollup.build import RollupSpec, build_and_attach

        build_and_attach(
            shard,
            RollupSpec(
                name=parent_rollup.name,
                table=parent_rollup.base_table,
                keys=parent_rollup.keys,
                aggregates=parent_rollup.aggregates,
            ),
        )
    return shard


def build_shards(
    db: Database,
    n_shards: int,
    mode: str = "hash",
    fact_table: str = FACT_TABLE,
    key_column: str = DEFAULT_SHARD_KEY,
) -> list[Database]:
    """Shard ``db`` into ``n_shards`` databases (see the module docs)."""
    assignment = shard_assignment(db, n_shards, mode, fact_table, key_column)
    return [
        shard_database(db, indices, shard_id, n_shards, mode, fact_table)
        for shard_id, indices in enumerate(assignment)
    ]
