"""Shard clusters: N shard nodes x R replicas over one parent database.

Two spawn modes share one surface (``endpoints[shard][replica]`` ->
``(host, port)``):

- ``spawn="thread"``: every replica is a
  :class:`~repro.serve.service.QueryService` +
  :class:`~repro.serve.server.QueryServer` pair on daemon threads in
  this process, replicas of one shard sharing that shard's in-memory
  database.  Cheap, deterministic, and what the equivalence matrix
  uses.
- ``spawn="process"``: each shard's database is exported into its own
  shm segment and each replica is a real spawned **node process** that
  attaches the segment zero-copy and serves the JSON-lines protocol;
  node services may themselves run ``executor="process"`` and own a
  per-node worker pool.  This is the production shape (and what the
  kill-a-node fault tests exercise).

Teardown ordering is the whole point of :meth:`ShardCluster.close`:
sockets stop first, node processes exit second, shm segments unlink
last -- one atexit hook with an explicit order, never N independent
hooks racing at interpreter exit (each exported
:class:`~repro.storage.shm.SharedDatabase` is ``disown_atexit()``-ed
and adopted here).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading

from repro.shard.partition import FACT_TABLE, build_shards

#: Exit code a node process dies with when honouring an injected kill.
KILLED_EXIT_CODE = 17


def _node_main(manifest, port_conn, executor, process_workers, workers, faults):
    """Entry point of one spawned shard-node process."""
    os.environ["REPRO_SHARD_NODE"] = "1"
    if faults:
        os.environ["REPRO_SHARD_FAULTS"] = "1"
    from repro.serve.server import QueryServer
    from repro.serve.service import QueryService, ServiceConfig
    from repro.storage import shm

    attached = shm.attach_database(manifest)
    config = ServiceConfig(
        workers=workers,
        executor=executor,
        process_workers=process_workers,
        shard_node=True,
        scale_factor=0.0,  # the db is attached, never generated
    )
    service = QueryService(config, db=attached.database).start()
    server = QueryServer(service)
    port_conn.send(server.address)
    port_conn.close()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
        attached.close()


class ShardCluster:
    """N shards x R replicas serving one sharded database."""

    def __init__(
        self,
        db,
        n_shards: int = 2,
        mode: str = "hash",
        replicas: int = 1,
        spawn: str = "thread",
        node_executor: str = "thread",
        node_workers: int = 2,
        process_workers: int | None = 2,
        faults: bool = False,
    ):
        if spawn not in ("thread", "process"):
            raise ValueError(f"unknown spawn mode {spawn!r}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.db = db
        self.n_shards = n_shards
        self.mode = mode
        self.replicas = replicas
        self.spawn = spawn
        self.faults = faults
        self.shards = build_shards(db, n_shards, mode)
        self.shard_rows = [
            shard.table(FACT_TABLE).n_rows for shard in self.shards
        ]
        #: ``endpoints[shard][replica]`` -> (host, port)
        self.endpoints: list[list[tuple[str, int]]] = []
        self._services: list = []
        self._servers: list = []
        self._threads: list[threading.Thread] = []
        self._segments: list = []
        self._processes: list = []
        self._closed = False
        self._had_faults_env = os.environ.get("REPRO_SHARD_FAULTS")
        if faults:
            # Thread-mode replicas share this process; the die op gate
            # reads the environment either way.
            os.environ["REPRO_SHARD_FAULTS"] = "1"
        try:
            if spawn == "thread":
                self._start_threads(node_executor, node_workers, process_workers)
            else:
                self._start_processes(node_executor, node_workers, process_workers)
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # -- startup -------------------------------------------------------
    def _start_threads(self, node_executor, node_workers, process_workers):
        from repro.serve.server import QueryServer
        from repro.serve.service import QueryService, ServiceConfig

        for shard_db in self.shards:
            replica_endpoints = []
            for _ in range(self.replicas):
                config = ServiceConfig(
                    workers=node_workers,
                    executor=node_executor,
                    process_workers=process_workers,
                    shard_node=True,
                    scale_factor=0.0,
                )
                service = QueryService(config, db=shard_db).start()
                server = QueryServer(service)
                thread = threading.Thread(
                    target=server.serve_forever,
                    kwargs={"poll_interval": 0.1},
                    daemon=True,
                    name=f"shard-node-{len(self.endpoints)}",
                )
                thread.start()
                self._services.append(service)
                self._servers.append(server)
                self._threads.append(thread)
                replica_endpoints.append(server.address)
            self.endpoints.append(replica_endpoints)

    def _start_processes(self, node_executor, node_workers, process_workers):
        from repro.storage import shm

        ctx = multiprocessing.get_context("spawn")
        for shard_db in self.shards:
            exported = shm.export_database(shard_db)
            # The cluster adopts exit-time ownership (see module docs).
            exported.disown_atexit()
            self._segments.append(exported)
            replica_endpoints = []
            for _ in range(self.replicas):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_node_main,
                    args=(
                        exported.manifest,
                        child_conn,
                        node_executor,
                        process_workers,
                        node_workers,
                        self.faults,
                    ),
                    name=f"shard-node-{len(self.endpoints)}-{len(replica_endpoints)}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                if not parent_conn.poll(timeout=120.0):
                    raise RuntimeError(
                        f"shard node {process.name} did not report a port"
                    )
                replica_endpoints.append(tuple(parent_conn.recv()))
                parent_conn.close()
                self._processes.append(process)
            self.endpoints.append(replica_endpoints)

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Ordered teardown: sockets -> node processes -> shm segments.
        Idempotent; safe from ``finally``/``atexit``/signal paths."""
        if self._closed:
            return
        self._closed = True
        for server in self._servers:
            try:
                server.shutdown()
                server.server_close()
            except Exception:
                pass
        for service in self._services:
            try:
                service.stop()
            except Exception:
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        # Segments unlink strictly after every attached node is gone.
        for exported in self._segments:
            exported.unlink()
        if self._had_faults_env is None:
            os.environ.pop("REPRO_SHARD_FAULTS", None)
        atexit.unregister(self.close)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def segment_names(self) -> list[str]:
        return [exported.segment_name for exported in self._segments]
