"""Checksummed wire codec for partial results and scattered calls.

Partial states carry ExactSum instances, WorkProfiles and numpy
arrays -- none of which survive JSON -- so the shard protocol ops
embed a pickled payload (base64, with a SHA-256 digest) inside the
existing JSON line.  The digest turns a truncated or bit-flipped
partial into :class:`CorruptPartial` at the coordinator, which treats
it exactly like a dead replica: fail over, never merge garbage.
"""

from __future__ import annotations

import base64
import hashlib
import pickle


class CorruptPartial(ValueError):
    """A wire partial failed its digest or could not be decoded."""


def _pack(payload: object) -> dict:
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "payload": base64.b64encode(raw).decode("ascii"),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def _unpack(message: dict) -> object:
    try:
        raw = base64.b64decode(message["payload"].encode("ascii"), validate=True)
    except (KeyError, AttributeError, ValueError) as exc:
        raise CorruptPartial(f"undecodable shard payload: {exc}") from None
    digest = hashlib.sha256(raw).hexdigest()
    if digest != message.get("sha256"):
        raise CorruptPartial(
            f"shard payload digest mismatch: got {digest[:12]}..., "
            f"header says {str(message.get('sha256'))[:12]}..."
        )
    try:
        return pickle.loads(raw)
    except Exception as exc:  # pickle raises a zoo of types
        raise CorruptPartial(f"shard payload does not unpickle: {exc}") from None


def encode_call(method: str, kwargs_items: tuple) -> dict:
    """One normalized engine call (already lowered and bound) as wire
    fields.  The coordinator lowers once; shard nodes never parse SQL."""
    return {"op": "partial", "method": method, **_pack(kwargs_items)}


def decode_call(message: dict) -> tuple[str, tuple]:
    method = message.get("method")
    if not isinstance(method, str):
        raise CorruptPartial("scattered call is missing its method")
    kwargs_items = _unpack(message)
    return method, tuple(kwargs_items)


def encode_partial(result) -> dict:
    """A still-partial QueryResult (from ``run_partial`` /
    ``thread_partial``) as wire fields."""
    return _pack(
        {
            "workload": result.workload,
            "state": result.details["partial"],
            "row_range": tuple(result.details["row_range"]),
            "operators": result.details.get("operators"),
            "tuples": result.tuples,
            "work": result.work,
            "pruning": result.details.get("pruning"),
            "rollup": result.details.get("rollup"),
        }
    )


def decode_partial(message: dict):
    """Reconstruct the partial QueryResult from wire fields."""
    from repro.engines.base import QueryResult

    data = _unpack(message)
    if not isinstance(data, dict) or "state" not in data:
        raise CorruptPartial("shard payload is not a partial result")
    details = {
        "partial": data["state"],
        "row_range": tuple(data["row_range"]),
    }
    if data.get("operators") is not None:
        details["operators"] = data["operators"]
    if data.get("pruning") is not None:
        details["pruning"] = data["pruning"]
    if data.get("rollup") is not None:
        details["rollup"] = data["rollup"]
    return QueryResult(
        workload=data["workload"],
        value=None,
        tuples=int(data["tuples"]),
        work=data["work"],
        details=details,
    )
