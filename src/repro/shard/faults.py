"""Deterministic fault injection for the shard client.

A :class:`FaultPlan` is armed on the coordinator and consumed at
attempt time, so tests decide exactly which shard misbehaves, how,
and how many times -- no sleeps-and-hope scheduling:

- ``kill``: ask the *current* replica to exit mid-query (the node
  honours the ``die`` op only when launched with faults enabled), then
  proceed with the attempt, which fails like a real node crash;
- ``drop``: refuse the connection before any bytes are sent;
- ``delay``: stall the attempt, as a slow network or GC pause would;
- ``corrupt``: flip bytes in the received partial payload, which the
  wire digest turns into :class:`~repro.shard.wire.CorruptPartial`.

Each armed fault fires ``times`` times and then disarms, so a plan
with ``times=1`` exercises failover (first replica fails, second
serves) while ``times=n_replicas`` proves the all-replicas-down path
ends in a clean error rather than a hang.
"""

from __future__ import annotations

import threading

KINDS = ("kill", "drop", "delay", "corrupt")


class FaultPlan:
    """Armed faults per (kind, shard), consumed as attempts happen."""

    def __init__(self):
        self._lock = threading.Lock()
        self._armed: dict[tuple[str, int], dict] = {}
        #: Chronological record of fired faults, for assertions.
        self.fired: list[dict] = []

    def _arm(self, kind: str, shard_id: int, times: int, **extra) -> "FaultPlan":
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._lock:
            self._armed[(kind, shard_id)] = {"times": times, **extra}
        return self

    def kill(self, shard_id: int, times: int = 1) -> "FaultPlan":
        """Kill the replica serving the next ``times`` attempts."""
        return self._arm("kill", shard_id, times)

    def drop(self, shard_id: int, times: int = 1) -> "FaultPlan":
        """Drop the connection for the next ``times`` attempts."""
        return self._arm("drop", shard_id, times)

    def delay(self, shard_id: int, seconds: float, times: int = 1) -> "FaultPlan":
        """Stall the next ``times`` attempts by ``seconds``."""
        return self._arm("delay", shard_id, times, seconds=float(seconds))

    def corrupt(self, shard_id: int, times: int = 1) -> "FaultPlan":
        """Corrupt the partial returned by the next ``times`` attempts."""
        return self._arm("corrupt", shard_id, times)

    def take(self, kind: str, shard_id: int) -> dict | None:
        """Consume one firing if ``kind`` is armed for ``shard_id``."""
        with self._lock:
            armed = self._armed.get((kind, shard_id))
            if armed is None:
                return None
            armed["times"] -= 1
            if armed["times"] <= 0:
                del self._armed[(kind, shard_id)]
            fired = {"kind": kind, "shard": shard_id, **{
                key: value for key, value in armed.items() if key != "times"
            }}
            self.fired.append(fired)
            return fired


def mangle_payload(message: dict) -> dict:
    """The injected-corruption transform: flip characters inside the
    base64 payload (and pad if tiny) so the digest check must fire."""
    payload = message.get("payload", "")
    if len(payload) < 8:
        mangled = payload + "AAAA"
    else:
        middle = len(payload) // 2
        flipped = "B" if payload[middle] != "B" else "C"
        mangled = payload[:middle] + flipped + payload[middle + 1:]
    return {**message, "payload": mangled}
