"""The scatter-gather coordinator.

One query comes in as SQL; the coordinator lowers it **once** (plan
LRU), derives its :func:`~repro.sql.lower.partition_binding`, and
routes:

- **scatter** -- the call drives over the sharded fact table: the
  normalized bound call is wire-encoded once and sent to every shard
  concurrently; each shard answers with a checksummed *partial*
  (state, work, tuples, row range), and the coordinator finishes the
  gathered partials with ``Engine.merge_morsels`` against the **full**
  database (finishers need global structures: group tables, selection
  quantiles, reference values).  Merged shard states are exact
  (ExactSum / integer / set merges are associative and commutative),
  so values and tuple counts are bit-identical to a single-node run
  for any shard count and either sharding mode.
- **single** -- the call never reads the fact table (dimension-only
  joins): dimensions are fully replicated, so any one shard answers
  it; shards take turns round-robin.
- anything that reads the fact table without driving over it is
  refused with a clean error naming the driving table.

**Failover state machine** (per shard, per query)::

    attempt(replica r) --ok--> gathered
        | transport error / timeout / corrupt partial
        v
    repro_shard_failover_total{shard,reason}++ ; backoff (bounded,
    doubling) ; r = (r + 1) % replicas  -- up to max_rounds * replicas
    attempts, then AllReplicasDown -> clean STATUS_ERROR response.

A deterministic node error (the shard *answered* with an error status
for a ``partial`` op) does not fail over: every replica of the shard
would answer the same, so the coordinator surfaces it immediately.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import Tracer, histogram_quantiles, trace
from repro.obs.clock import DEFAULT_CLOCK
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.serve import protocol
from repro.serve.protocol import STATUS_ERROR, STATUS_OK
from repro.shard import wire
from repro.shard.partition import FACT_TABLE
from repro.sql.lower import partition_binding


class ShardError(RuntimeError):
    """A scatter-gather query failed at the coordinator."""


class AllReplicasDown(ShardError):
    """Every replica of one shard failed within the retry budget."""

    def __init__(self, shard_id: int, reasons: list):
        self.shard_id = shard_id
        self.reasons = list(reasons)
        attempts = ", ".join(
            f"{endpoint[0]}:{endpoint[1]} ({reason})"
            for endpoint, reason in self.reasons
        )
        super().__init__(
            f"shard {shard_id}: all replicas down after "
            f"{len(self.reasons)} attempts [{attempts}]"
        )


@dataclass(frozen=True)
class CoordinatorConfig:
    """Tunables of one :class:`Coordinator`."""

    default_engine: str = "Typer"
    #: Socket/read timeout of one shard attempt.
    attempt_timeout_s: float = 30.0
    #: Each replica is tried at most this many times per query.
    max_rounds: int = 2
    #: Bounded exponential backoff between failed attempts.
    backoff_base_s: float = 0.02
    backoff_max_s: float = 0.25
    plan_cache_size: int = 64

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be > 0")


class Coordinator:
    """Scatter-gather front end over a :class:`~repro.shard.cluster.ShardCluster`."""

    def __init__(
        self,
        db,
        cluster,
        config: CoordinatorConfig | None = None,
        fault_plan=None,
        clock=None,
        sleep=time.sleep,
    ):
        self.db = db
        self.cluster = cluster
        self.config = config or CoordinatorConfig()
        self.fault_plan = fault_plan
        self.clock = clock or DEFAULT_CLOCK
        self._sleep = sleep
        self._engines: dict[str, object] = {}
        self._plans: "OrderedDict[str, object]" = OrderedDict()
        self._plans_lock = threading.Lock()
        self._rr = 0
        self._rr_lock = threading.Lock()
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_queries = m.counter(
            "repro_shard_queries_total",
            "Coordinator queries by route and outcome",
            ("route", "status"),
        )
        self._m_failover = m.counter(
            "repro_shard_failover_total",
            "Failed shard attempts that moved on to another replica",
            ("shard", "reason"),
        )
        self._m_exhausted = m.counter(
            "repro_shard_exhausted_total",
            "Queries that found every replica of a shard down",
            ("shard",),
        )
        self._m_partials = m.counter(
            "repro_shard_partials_total",
            "Partials gathered per shard",
            ("shard",),
        )
        self._m_latency = m.histogram(
            "repro_shard_latency_seconds",
            "End-to-end coordinator latency",
            ("route",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_shards = m.gauge("repro_shard_count", "Shards in the cluster")
        self._m_shards.set(cluster.n_shards)

    # -- lowering ------------------------------------------------------
    def compile(self, sql: str):
        """Lower once per normalized text (LRU, like the service's)."""
        from repro.sql import compile_sql, normalize_sql

        key = normalize_sql(sql)
        with self._plans_lock:
            bound = self._plans.get(key)
            if bound is not None:
                self._plans.move_to_end(key)
                return bound
        bound = compile_sql(sql)
        with self._plans_lock:
            self._plans.setdefault(key, bound)
            self._plans.move_to_end(key)
            while len(self._plans) > self.config.plan_cache_size:
                self._plans.popitem(last=False)
            return self._plans[key]

    def engine(self, name: str):
        if name not in self._engines:
            from repro.engines import engine_by_name

            self._engines[name] = engine_by_name(name)
        return self._engines[name]

    # -- public API ----------------------------------------------------
    def execute(
        self,
        sql: str,
        engine: str | None = None,
        options: dict | None = None,
        trace_query: bool = False,
    ) -> dict:
        """One query, protocol-shaped response (status/value/tuples/...)."""
        engine_name = engine or self.config.default_engine
        started = self.clock.now()
        tracer = token = None
        if trace_query:
            tracer = Tracer(self.clock)
            tracer.start("query", sql=sql, engine=engine_name, coordinator=True)
            token = trace.activate(tracer, tracer.root)
        route = "scatter"
        try:
            response = self._execute(sql, engine_name, dict(options or {}))
            route = response.get("route", route)
        except ShardError as exc:
            response = {"status": STATUS_ERROR, "error": str(exc)}
        except Exception as exc:  # lowering/merge errors -> clean response
            response = {
                "status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            if token is not None:
                trace.deactivate(token)
        elapsed = self.clock.now() - started
        response.setdefault("route", route)
        response["latency_ms"] = elapsed * 1e3
        self._m_queries.labels(
            route=response["route"], status=response["status"]
        ).inc()
        self._m_latency.labels(route=response["route"]).observe(elapsed)
        if tracer is not None:
            tracer.finish()
            response["trace"] = tracer.render()
        return response

    def _execute(self, sql: str, engine_name: str, options: dict) -> dict:
        from repro.core.parallel import normalized_call
        from repro.sql.errors import SqlError

        try:
            with trace.span("plan_cache"):
                bound = self.compile(sql)
        except SqlError as exc:
            return {"status": STATUS_ERROR, "error": str(exc)}
        binding = partition_binding(bound)
        if binding.table != FACT_TABLE:
            if FACT_TABLE in binding.referenced:
                return {
                    "status": STATUS_ERROR,
                    "error": (
                        f"cannot scatter {bound.workload!r}: it partitions "
                        f"{binding.table!r} but also reads the sharded fact "
                        f"table {FACT_TABLE!r}; shard by the driving table "
                        "to distribute this query"
                    ),
                }
            return self._single(sql, engine_name, options, bound)
        engine_obj = self.engine(engine_name)
        merged = bound.call_kwargs()
        merged.update(options)
        try:
            method, kwargs_items = normalized_call(
                engine_obj, bound.method, bound.args, merged
            )
        except ValueError as exc:
            return {"status": STATUS_ERROR, "error": str(exc)}
        result, failovers = self._scatter_gather(
            engine_obj, method, kwargs_items, engine_name
        )
        return {
            "status": STATUS_OK,
            "route": "scatter",
            "workload": bound.workload,
            "method": bound.method,
            "engine": engine_name,
            "value": protocol.jsonable(result.value),
            "tuples": result.tuples,
            "shards": self.cluster.n_shards,
            "failovers": failovers,
        }

    # -- scatter route -------------------------------------------------
    def _scatter_gather(self, engine_obj, method, kwargs_items, engine_name):
        message = {**wire.encode_call(method, kwargs_items), "engine": engine_name}
        outcomes: list = [None] * self.cluster.n_shards
        threads = []
        for shard_id in range(self.cluster.n_shards):
            thread = threading.Thread(
                target=self._gather_one,
                args=(shard_id, message, outcomes),
                name=f"scatter-{shard_id}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        failovers: list[dict] = []
        errors: list[ShardError] = []
        partials = []
        for shard_id, outcome in enumerate(outcomes):
            partial, attempts, t0, t1, hard_error = outcome
            if hard_error is not None:
                raise hard_error
            if trace.active():
                trace.record(
                    "shard",
                    t0,
                    t1,
                    shard=shard_id,
                    attempts=len(attempts),
                    failed_over=len(attempts) - 1,
                    outcome="ok" if partial is not None else "down",
                )
            for endpoint, reason in attempts[:-1] if partial is not None else attempts:
                failovers.append(
                    {
                        "shard": shard_id,
                        "endpoint": f"{endpoint[0]}:{endpoint[1]}",
                        "reason": reason,
                    }
                )
            if partial is None:
                self._m_exhausted.labels(shard=str(shard_id)).inc()
                errors.append(AllReplicasDown(shard_id, attempts))
            else:
                self._m_partials.labels(shard=str(shard_id)).inc()
                partials.append(partial)
        if errors:
            raise errors[0]
        result = self._merge(engine_obj, method, kwargs_items, partials)
        return result, failovers

    def _gather_one(self, shard_id: int, message: dict, outcomes: list) -> None:
        t0 = self.clock.now()
        try:
            partial, attempts = self._shard_partial(shard_id, message)
        except AllReplicasDown as exc:
            outcomes[shard_id] = (None, exc.reasons, t0, self.clock.now(), None)
            return
        except ShardError as exc:
            outcomes[shard_id] = (None, [], t0, self.clock.now(), exc)
            return
        outcomes[shard_id] = (partial, attempts, t0, self.clock.now(), None)

    def _shard_partial(self, shard_id: int, message: dict):
        """The failover loop for one shard (see the module docstring)."""
        endpoints = self.cluster.endpoints[shard_id]
        plan = self.fault_plan
        attempts: list = []
        failures = 0
        for _ in range(self.config.max_rounds):
            for endpoint in endpoints:
                reason = None
                if plan is not None and plan.take("kill", shard_id):
                    self._send_die(endpoint)
                if plan is not None and plan.take("drop", shard_id):
                    reason = "drop-injected"
                elif plan is not None:
                    delay = plan.take("delay", shard_id)
                    if delay is not None:
                        self._sleep(delay["seconds"])
                        reason = "delay-injected"
                if reason is None:
                    try:
                        response = self._request(endpoint, message)
                    except (OSError, ValueError) as exc:
                        reason = f"connection: {type(exc).__name__}"
                    else:
                        if response.get("status") != STATUS_OK:
                            # The node answered: a deterministic error,
                            # identical on every replica.  Surface it.
                            raise ShardError(
                                f"shard {shard_id} rejected the plan: "
                                f"{response.get('error', 'unknown error')}"
                            )
                        if plan is not None and plan.take("corrupt", shard_id):
                            response = wire_mangled(response)
                        try:
                            partial = wire.decode_partial(response)
                        except wire.CorruptPartial as exc:
                            reason = f"corrupt-partial: {exc}"
                        else:
                            attempts.append((endpoint, "ok"))
                            return partial, attempts
                attempts.append((endpoint, reason))
                self._m_failover.labels(
                    shard=str(shard_id), reason=reason.split(":", 1)[0]
                ).inc()
                if trace.active():
                    now = self.clock.now()
                    trace.record(
                        "failover",
                        now,
                        now,
                        shard=shard_id,
                        endpoint=f"{endpoint[0]}:{endpoint[1]}",
                        reason=reason,
                    )
                backoff = min(
                    self.config.backoff_base_s * (2.0 ** failures),
                    self.config.backoff_max_s,
                )
                failures += 1
                self._sleep(backoff)
        raise AllReplicasDown(shard_id, attempts)

    def _request(self, endpoint, message: dict) -> dict:
        with socket.create_connection(
            endpoint, timeout=self.config.attempt_timeout_s
        ) as sock:
            stream = sock.makefile("rwb")
            stream.write(protocol.encode(message))
            stream.flush()
            line = stream.readline()
        if not line:
            raise ConnectionError("shard node closed the connection")
        return protocol.decode(line)

    def _send_die(self, endpoint) -> None:
        """Deliver an injected kill; the node's death is observed by the
        attempt that follows, like any real crash."""
        try:
            self._request(endpoint, {"op": "die"})
        except (OSError, ValueError):
            pass

    # -- exact cross-shard merge ---------------------------------------
    def _merge(self, engine_obj, method, kwargs_items, partials):
        """Finish gathered shard partials with the single-node mergers.

        Two shard-boundary adjustments first:

        - per-shard row ranges are offset into disjoint global spans so
          the merge order is deterministic (merge values are order-
          independent anyway -- this keeps congruence checks happy);
        - top-level ``const_*`` state entries (e.g. the per-slot
          encoded-aggregation morph decision) may legitimately differ
          across shards (each shard re-encodes its own subset), where a
          single node's morsels must agree.  They are popped before the
          merge and reinstated only when every shard agrees; finishers
          treat them as optional.
        """
        offset = 0
        for shard_id, partial in enumerate(partials):
            lo, hi = partial.details["row_range"]
            partial.details["row_range"] = (offset + lo, offset + hi)
            offset += self.cluster.shard_rows[shard_id]
        _harmonize_patterns([partial.work for partial in partials])
        operator_maps = [
            partial.details.get("operators")
            for partial in partials
            if partial.details.get("operators") is not None
        ]
        if len(operator_maps) == len(partials) and operator_maps:
            for name in operator_maps[0]:
                if all(name in ops for ops in operator_maps):
                    _harmonize_patterns([ops[name] for ops in operator_maps])
        popped: list[dict] = []
        keys = set()
        for partial in partials:
            state = partial.details["partial"]
            consts = {
                key: state.pop(key)
                for key in [k for k in state if isinstance(k, str) and k.startswith("const_")]
            }
            popped.append(consts)
            keys.update(consts)
        agreed = {}
        for key in keys:
            values = [consts[key] for consts in popped if key in consts]
            if len(values) == len(partials) and all(
                _const_equal(values[0], value) for value in values[1:]
            ):
                agreed[key] = values[0]
        if agreed and partials:
            partials[0].details["partial"].update(agreed)
        with trace.span("gather_merge", shards=len(partials)):
            return engine_obj.merge_morsels(self.db, method, kwargs_items, partials)

    # -- single route --------------------------------------------------
    def _single(self, sql: str, engine_name: str, options: dict, bound) -> dict:
        """Dimension-only queries run on one shard (fully replicated);
        shards take turns, with the same failover loop."""
        with self._rr_lock:
            shard_id = self._rr % self.cluster.n_shards
            self._rr += 1
        message: dict = {"sql": sql, "engine": engine_name}
        if options:
            message["options"] = options
        partial_message = dict(message)
        response, attempts = self._single_failover(shard_id, partial_message)
        response = dict(response)
        response["route"] = "single"
        response["shard"] = shard_id
        if len(attempts) > 1:
            response["failovers"] = [
                {
                    "shard": shard_id,
                    "endpoint": f"{endpoint[0]}:{endpoint[1]}",
                    "reason": reason,
                }
                for endpoint, reason in attempts[:-1]
            ]
        return response

    def _single_failover(self, shard_id: int, message: dict):
        endpoints = self.cluster.endpoints[shard_id]
        attempts: list = []
        failures = 0
        for _ in range(self.config.max_rounds):
            for endpoint in endpoints:
                try:
                    response = self._request(endpoint, message)
                except (OSError, ValueError) as exc:
                    reason = f"connection: {type(exc).__name__}"
                else:
                    attempts.append((endpoint, "ok"))
                    return response, attempts
                attempts.append((endpoint, reason))
                self._m_failover.labels(
                    shard=str(shard_id), reason=reason.split(":", 1)[0]
                ).inc()
                backoff = min(
                    self.config.backoff_base_s * (2.0 ** failures),
                    self.config.backoff_max_s,
                )
                failures += 1
                self._sleep(backoff)
        self._m_exhausted.labels(shard=str(shard_id)).inc()
        raise AllReplicasDown(shard_id, attempts)

    # -- introspection -------------------------------------------------
    def stats_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        latency = snapshot.get("repro_shard_latency_seconds", {})
        labelnames = latency.get("labelnames", ())
        quantiles = {}
        for labels, series in latency.get("series", {}).items():
            series_name = ",".join(
                f"{name}={value}" for name, value in zip(labelnames, labels)
            )
            quantiles[series_name] = {
                "p" + f"{q * 100:g}".replace(".", ""): value
                for q, value in histogram_quantiles(
                    latency["buckets"], series
                ).items()
            }
        return {
            "shards": self.cluster.n_shards,
            "replicas": self.cluster.replicas,
            "mode": self.cluster.mode,
            "spawn": self.cluster.spawn,
            "shard_rows": list(self.cluster.shard_rows),
            "latency_quantiles_s": quantiles,
        }

    def metrics_text(self) -> str:
        return self.metrics.render()


def _harmonize_patterns(works) -> None:
    """Align random-access pattern *parameters* across shard works.

    Morsels of one node share every per-database structure, so the
    partial-merge congruence check rightly demands identical pattern
    parameters.  Shards build their own structures (a shard-local group
    table has a shard-sized working set), so the same pattern can carry
    different parameters per shard.  Rewrite each diverging pattern to
    the parameters of the largest-count shard -- exactly the primary
    :func:`repro.core.workprofile._merge_random` would pick -- so the
    cross-node merge models the dominant structure and counts still add
    exactly.  (Cross-shard *work* identity is not claimed; values and
    tuple counts are.)
    """
    from repro.core.workprofile import RandomAccessPattern

    if len({len(work.random_patterns) for work in works}) != 1:
        return  # not congruent; let the merge raise its own error
    for index in range(len(works[0].random_patterns)):
        patterns = [work.random_patterns[index] for work in works]
        primary = max(patterns, key=lambda pattern: pattern.count)
        target = (primary.working_set_bytes, primary.dependent, primary.mlp_hint)
        for work, pattern in zip(works, patterns):
            if pattern.count > 0 and (
                pattern.working_set_bytes, pattern.dependent, pattern.mlp_hint
            ) != target:
                work.random_patterns[index] = RandomAccessPattern(
                    pattern.name, pattern.count, *target
                )


def _const_equal(a, b) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return False


def wire_mangled(response: dict) -> dict:
    from repro.shard.faults import mangle_payload

    return mangle_payload(response)
