"""repro.shard -- sharded scatter-gather execution across node processes.

The single-node stack already has every ingredient distribution needs:
a JSON-lines TCP protocol (:mod:`repro.serve`), a spawn worker pool
over one shm segment per database (:mod:`repro.core.parallel`,
:mod:`repro.storage.shm`), and exact partial merging
(:func:`repro.engines.morsel.merge_states`, ExactSum) that makes
results independent of how rows are partitioned.  This package wires
those pieces across process boundaries:

- :mod:`repro.shard.partition` -- hash/range sharding of the fact
  table into per-shard databases (dimensions replicated, parent code
  spaces preserved so compiled group keys survive);
- :mod:`repro.shard.cluster` -- N shard nodes x R replicas, each node
  a :class:`~repro.serve.service.QueryService` over its own shard
  (process nodes own their own shm segment and worker pool);
- :mod:`repro.shard.coordinator` -- lowers a query once, scatters the
  bound call to every shard, gathers wire-encoded partials and
  finishes them with the same exact mergers a single node uses, with
  replica failover under a bounded backoff;
- :mod:`repro.shard.wire` -- checksummed partial-result codec;
- :mod:`repro.shard.faults` -- deterministic fault injection (kill /
  drop / delay / corrupt) for the failover tests;
- :mod:`repro.shard.partial_exec` -- shard-node partial execution:
  zone-map pruning and rollup routing per shard, stopping before the
  finisher so the coordinator can merge exactly.
"""

from repro.shard.cluster import ShardCluster
from repro.shard.coordinator import (
    AllReplicasDown,
    Coordinator,
    CoordinatorConfig,
    ShardError,
)
from repro.shard.faults import FaultPlan
from repro.shard.partition import build_shards, shard_assignment, shard_database
from repro.shard.wire import CorruptPartial

__all__ = [
    "AllReplicasDown",
    "Coordinator",
    "CoordinatorConfig",
    "CorruptPartial",
    "FaultPlan",
    "ShardCluster",
    "ShardError",
    "build_shards",
    "shard_assignment",
    "shard_database",
]
