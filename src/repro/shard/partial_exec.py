"""Shard-node partial execution: run this shard's rows, stop before
the finisher.

Every path here returns ``(partial, prune_summary, rollup_decision)``
where ``partial`` is one still-mergeable QueryResult (state under
``details["partial"]``) -- the shard's contribution to the
coordinator's exact cross-node merge.

Two shard-aware reuses of the single-node machinery:

- **Zone-map pruning is per shard**: each shard prunes its *own*
  morsels against its own zone maps (shard subsets keep the parent
  code spaces, so code-domain zone maps stay valid), and synthesizes
  the same exact pruned partials a single node would.
- **Rollup routing returns partials, not values**: the single-node
  router finishes (rounds) its result, which would break cross-shard
  exactness, so here a matching shard rollup contributes its ExactSum
  units as a *partial* and the coordinator's finisher rounds exactly
  once, globally.
"""

from __future__ import annotations

import numpy as np

from repro.core import parallel, pruning
from repro.obs import trace


def rollup_partial(db, engine, method: str, kwargs: dict):
    """(partial, decision) from a subsuming shard rollup, else (None, None).

    Only whole-table global sums route here (``run_projection`` /
    ``run_groupby``): their finishers consume exactly
    ``state["sum"]`` + merged tuples, so a partial synthesized from
    rollup ExactSum units is indistinguishable from a scan partial.
    Profiles with atoms or per-group output (Q1) fall through to the
    scan path -- their shard-level value would need partition-aligned
    predicates per shard, which hash sharding does not preserve.
    """
    from repro.core.exactsum import ExactSum
    from repro.rollup import router

    if not router.rollups_enabled():
        return None, None
    names = getattr(db, "rollup_names", ())
    if not names:
        return None, None
    profile = router.profile_for(method, kwargs)
    if profile is None or profile.atoms or profile.keys or profile.needs_groups:
        return None, None
    for name in names:
        rollup = db.rollup(name)
        matched = router._match(db, rollup, profile)
        if isinstance(matched, str):
            continue
        selected = np.flatnonzero(matched[rollup.partition_ids])
        agg = rollup.aggregate_named("sum", profile.expressions[0])
        n_rows = db.table(rollup.base_table).n_rows
        n_read = len(selected)
        if method == "run_groupby":
            label = "groupby-micro"
        else:
            label = f"projection-p{int(kwargs['degree'])}"
        work = engine._new_work()
        # Same honest work model as the single-node router: a tight
        # decode-and-accumulate loop over the rollup rows touched.
        work.record_work(
            instructions=8.0 * n_read,
            alu=4.0 * n_read,
            loads=2.0 * n_read,
            chain=float(n_read),
        )
        work.record_sequential_read(float(rollup.row_bytes((agg.name,)) * n_read))
        state = {"sum": ExactSum(rollup.sum_units(agg.name, selected))}
        # tuples stays the shard's base-row count: finishers report the
        # rows the query logically covered, and cross-shard sums must
        # equal the single-node scan's count.
        partial = engine._partial_result(label, state, n_rows, work, (0, n_rows))
        decision = {
            "rollup_used": True,
            "reason": "routed",
            "rollup": rollup.name,
            "rows_read": int(n_read),
            "base_rows_avoided": int(n_rows),
        }
        partial.details["rollup"] = decision
        return partial, decision
    return None, None


def thread_partial(db, engine, method: str, kwargs_items: tuple):
    """In-process shard execution (thread-executor nodes)."""
    kwargs = dict(kwargs_items)
    partial, decision = rollup_partial(db, engine, method, kwargs)
    if partial is not None:
        return partial, None, decision
    plan = None
    if pruning.pruning_enabled():
        atoms = pruning.atoms_for(db, method, kwargs)
        if atoms:
            with trace.span("prune", executor="shard"):
                plan = pruning.compute_prune_plan(db, atoms)
                if plan is not None:
                    trace.annotate(**plan.summary(db, method))
    if plan is not None and plan.nothing_pruned:
        plan = None
    runner = getattr(engine, method)
    partials = []
    if plan is None:
        n_rows = engine.partition_rows(db, method, kwargs)
        partials.append(runner(db, row_range=(0, n_rows), **kwargs))
    else:
        for lo, hi in plan.kept_segments:
            partials.append(runner(db, row_range=(lo, hi), **kwargs))
        partials.extend(pruning.pruned_partials(engine, db, method, kwargs, plan))
    if not partials:
        raise ValueError("shard produced no partial result")
    merged = parallel.merge_worker_partials(partials)
    summary = plan.summary(db, method) if plan is not None else None
    return merged, summary, None


def pooled_partial(pool, engine, method: str, kwargs_items: tuple):
    """Worker-pool shard execution (process-executor nodes): the node's
    own pool prunes, fans out morsels and pre-merges worker partials."""
    kwargs = dict(kwargs_items)
    partial, decision = rollup_partial(pool.db, engine, method, kwargs)
    if partial is not None:
        return partial, None, decision
    partial, summary = pool.run_partial(engine, method, **kwargs)
    return partial, summary, None
