"""Injectable monotonic clocks.

Every wall-clock measurement in the serving stack -- request latency,
span start/end times, admission wait -- reads one :class:`Clock` so
tests can substitute a :class:`FakeClock` and get bit-deterministic
durations.  The production clock is ``time.perf_counter`` (monotonic,
high resolution); timestamps are only ever *subtracted*, never
interpreted as wall time, so the epoch is irrelevant.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Monotonic time source: ``now()`` in (float) seconds."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic clock for tests.

    Each ``now()`` call returns the current time and then auto-advances
    by ``step``, so every measured duration is an exact multiple of the
    step no matter how fast the code under test runs.  ``advance``
    injects extra elapsed time between calls.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        if step < 0:
            raise ValueError("step must be non-negative")
        self._now = float(start)
        self.step = float(step)
        self._lock = threading.Lock()
        self.calls = 0

    def now(self) -> float:
        with self._lock:
            current = self._now
            self._now += self.step
            self.calls += 1
            return current

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        with self._lock:
            self._now += seconds


#: Shared default instance (stateless, so one is enough).
DEFAULT_CLOCK = MonotonicClock()
