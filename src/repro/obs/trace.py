"""Per-query span trees with a contextvar fast path.

One :class:`Tracer` records one query's execution as a tree of
:class:`Span` nodes (parse, plan, admission wait, per-morsel execution,
merge, serialize ...).  Instrumentation sites call the module-level
:func:`span` / :func:`annotate` / :func:`record` helpers; when no trace
is active (the default) those are near-free -- a single
``ContextVar.get()`` returning ``None`` -- so the instrumented hot
paths cost nothing for untraced traffic.  This is the contextvar fast
path the overhead regression test pins.

Activation is explicit: the owner of a flow calls
``token = activate(tracer, tracer.root)`` on the thread that executes
it and ``deactivate(token)`` when done, so traces follow requests
across the service's admission/worker thread handoff (contextvars do
not propagate between threads by themselves).

Cross-process spans (the morsel executions inside
:mod:`repro.core.parallel` workers) are recorded as plain timing tuples
in the worker, shipped over the result channel and grafted into the
active trace with :func:`record`; timestamps are shifted into the
parent span's window so the nesting invariant (children lie within
their parents) holds even if the processes' clocks disagree.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar

from repro.obs.clock import Clock, DEFAULT_CLOCK

#: (tracer, current span) of the active trace on this thread/context,
#: or None -- the disabled fast path.
_ACTIVE: ContextVar["tuple[Tracer, Span] | None"] = ContextVar(
    "repro_obs_active", default=None
)


class Span:
    """One named, timed node of a trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "children")

    def __init__(self, name, span_id, parent_id, start, attrs=None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = None
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self, origin: float) -> dict:
        """The span subtree as plain data; times in milliseconds
        relative to ``origin`` (normally the root span's start)."""
        duration = self.duration
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.start - origin) * 1e3, 6),
            "duration_ms": None if duration is None else round(duration * 1e3, 6),
            "attrs": dict(self.attrs),
            "children": [child.to_dict(origin) for child in self.children],
        }


class Tracer:
    """Builds one query's span tree against an injectable clock.

    Span ids are allocated sequentially in creation order, so a
    deterministic execution (single worker, :class:`FakeClock`) yields
    a bit-identical trace -- the golden-trace tests rely on this.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or DEFAULT_CLOCK
        self.root: Span | None = None
        self._lock = threading.Lock()
        self._next_id = 0

    def _allocate(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def start(self, name: str, **attrs) -> Span:
        """Open the root span.  A tracer traces exactly one tree."""
        if self.root is not None:
            raise RuntimeError("tracer already has a root span")
        self.root = Span(name, self._allocate(), None, self.clock.now(), attrs)
        return self.root

    def child(self, parent: Span, name: str, attrs=None, start=None) -> Span:
        span = Span(
            name,
            self._allocate(),
            parent.span_id,
            self.clock.now() if start is None else start,
            attrs,
        )
        with self._lock:
            parent.children.append(span)
        return span

    def finish(self, span: Span | None = None, end: float | None = None) -> None:
        span = span if span is not None else self.root
        if span is None or span.end is not None:
            return
        end_time = self.clock.now() if end is None else end
        # Grafted cross-process children carry timestamps from another
        # clock domain and may extend past this moment; widen the span
        # so children always nest within their parents.
        for child in span.children:
            if child.end is not None and child.end > end_time:
                end_time = child.end
        span.end = end_time

    def render(self) -> dict:
        """The finished tree as plain data (root must exist)."""
        if self.root is None:
            raise RuntimeError("tracer never started a root span")
        if self.root.end is None:
            self.finish(self.root)
        return self.root.to_dict(self.root.start)


# ----------------------------------------------------------------------
# Context helpers (the instrumentation surface)
# ----------------------------------------------------------------------
def activate(tracer: Tracer, span: Span):
    """Install ``span`` as the current parent on this thread/context;
    returns a token for :func:`deactivate`."""
    return _ACTIVE.set((tracer, span))


def deactivate(token) -> None:
    _ACTIVE.reset(token)


def active() -> bool:
    return _ACTIVE.get() is not None


def current_span() -> Span | None:
    context = _ACTIVE.get()
    return None if context is None else context[1]


class _NullSpan:
    """Singleton no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a child span under the current one."""

    __slots__ = ("_name", "_attrs", "_token", "span")

    def __init__(self, name, attrs):
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer, parent = _ACTIVE.get()
        self.span = tracer.child(parent, self._name, self._attrs)
        self._token = _ACTIVE.set((tracer, self.span))
        return self.span

    def __exit__(self, *exc_info):
        tracer, span = _ACTIVE.get()
        _ACTIVE.reset(self._token)
        tracer.finish(span)
        return False


def span(name: str, **attrs):
    """Open a child span of the current trace, or no-op when disabled.

    ``with span("parse") as s:`` -- ``s`` is the :class:`Span` (set
    attrs on it) or ``None`` when tracing is off.
    """
    if _ACTIVE.get() is None:
        return NULL_SPAN
    return _ActiveSpan(name, attrs)


def annotate(**attrs) -> None:
    """Merge attrs into the current span, if any."""
    context = _ACTIVE.get()
    if context is not None:
        context[1].attrs.update(attrs)


def record(name: str, start: float, end: float, **attrs) -> Span | None:
    """Graft an already-measured interval as a completed child span.

    Used for intervals timed outside the active context -- the
    admission wait (timed from the submitting thread) and per-morsel
    executions (timed inside worker processes).  If ``start`` precedes
    the parent span's start (different clock domain), the interval is
    shifted forward to the parent's start; the duration is preserved.
    """
    context = _ACTIVE.get()
    if context is None:
        return None
    tracer, parent = context
    if end < start:
        end = start
    if start < parent.start:
        shift = parent.start - start
        start += shift
        end += shift
    child = tracer.child(parent, name, attrs, start=start)
    child.end = end
    return child
