"""Ring buffer of the N slowest queries, span trees attached.

The service records every finished query; the log keeps only the
``capacity`` slowest by latency (a min-heap keyed on latency, so the
cheapest eviction victim is always at the top).  ``snapshot`` returns
entries slowest-first as plain data for the ``slowlog`` protocol op.
"""

from __future__ import annotations

import heapq
import itertools
import threading


class SlowLog:
    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("slowlog capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()

    def record(
        self,
        *,
        sql: str,
        engine: str,
        status: str,
        latency_ms: float,
        trace: dict | None = None,
    ) -> None:
        entry = {
            "sql": sql,
            "engine": engine,
            "status": status,
            "latency_ms": round(float(latency_ms), 6),
            "trace": trace,
        }
        item = (float(latency_ms), next(self._seq), entry)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif item[:2] > self._heap[0][:2]:
                heapq.heapreplace(self._heap, item)

    def snapshot(self) -> list[dict]:
        """Entries slowest-first (ties broken newest-first)."""
        with self._lock:
            items = sorted(self._heap, reverse=True)
        return [dict(entry) for _, _, entry in items]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
