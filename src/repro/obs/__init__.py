"""repro.obs -- tracing and metrics for the query service.

Three small pieces:

- :mod:`repro.obs.trace` -- per-query span trees behind a contextvar
  fast path (near-zero cost when no trace is active);
- :mod:`repro.obs.metrics` -- counters / gauges / fixed-bucket
  histograms with picklable snapshots, exact cross-process merging and
  Prometheus text exposition;
- :mod:`repro.obs.slowlog` -- a bounded log of the slowest queries
  with their span trees.

All timing flows through :mod:`repro.obs.clock` so tests can inject a
:class:`~repro.obs.clock.FakeClock` and pin bit-deterministic traces.
"""

from repro.obs.clock import Clock, DEFAULT_CLOCK, FakeClock, MonotonicClock
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    REGISTRY,
    histogram_quantiles,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
)
from repro.obs.slowlog import SlowLog
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    active,
    annotate,
    current_span,
    deactivate,
    record,
    span,
)

__all__ = [
    "Clock",
    "DEFAULT_CLOCK",
    "DEFAULT_LATENCY_BUCKETS",
    "FakeClock",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_SPAN",
    "REGISTRY",
    "SlowLog",
    "Span",
    "Tracer",
    "activate",
    "active",
    "annotate",
    "current_span",
    "deactivate",
    "histogram_quantiles",
    "merge_snapshots",
    "parse_exposition",
    "record",
    "render_snapshot",
    "span",
]
