"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* (one name, one type,
fixed label names) of labelled series.  Three operations make it work
across the multi-process executor:

- :meth:`MetricsRegistry.snapshot` -- the whole registry as plain
  picklable data (this is what pool workers send over the existing
  result channel);
- :func:`merge_snapshots` -- exact aggregation of many snapshots
  (counters and histogram buckets add; gauges add too, which is the
  right semantics for the per-worker occupancy gauges we export);
- :func:`render_snapshot` -- Prometheus text exposition (``# HELP`` /
  ``# TYPE`` / ``name{labels} value``), deterministic ordering.

:func:`parse_exposition` is a strict parser for that format used by the
CI obs-smoke step and the tests -- if the exposition ever stops
parsing, the gate fails.
"""

from __future__ import annotations

import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond to ten seconds.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


class _Series:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class MetricFamily:
    """One named metric and its labelled series."""

    def __init__(self, registry, name, help_text, kind, labelnames, buckets=None):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._series: dict[tuple, object] = {}

    # -- series resolution --------------------------------------------
    def labels(self, **labels) -> "_Handle":
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        return _Handle(self, key)

    def _get(self, key: tuple):
        with self._registry._lock:
            series = self._series.get(key)
            if series is None:
                series = (
                    _HistogramSeries(len(self.buckets))
                    if self.kind == "histogram"
                    else _Series()
                )
                self._series[key] = series
            return series

    # -- unlabelled convenience ---------------------------------------
    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return _Handle(self, ())

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def sync(self, total: float) -> None:
        self._default().sync(total)

    def observe(self, value: float) -> None:
        self._default().observe(value)


class _Handle:
    """One (family, label values) series accessor."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: MetricFamily, key: tuple):
        self._family = family
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if self._family.kind not in ("counter", "gauge"):
            raise TypeError(f"{self._family.name} is a {self._family.kind}")
        if self._family.kind == "counter" and amount < 0:
            raise ValueError("counters only go up")
        series = self._family._get(self._key)
        with self._family._registry._lock:
            series.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._family.kind != "gauge":
            raise TypeError(f"{self._family.name} is a {self._family.kind}")
        self.inc(-amount)

    def set(self, value: float) -> None:
        if self._family.kind != "gauge":
            raise TypeError(f"{self._family.name} is a {self._family.kind}")
        series = self._family._get(self._key)
        with self._family._registry._lock:
            series.value = float(value)

    def sync(self, total: float) -> None:
        """Mirror an externally maintained monotonic counter: set the
        series to its current total at scrape time."""
        if self._family.kind != "counter":
            raise TypeError(f"{self._family.name} is a {self._family.kind}")
        series = self._family._get(self._key)
        with self._family._registry._lock:
            series.value = float(total)

    def observe(self, value: float) -> None:
        if self._family.kind != "histogram":
            raise TypeError(f"{self._family.name} is a {self._family.kind}")
        series = self._family._get(self._key)
        buckets = self._family.buckets
        index = len(buckets)
        for position, bound in enumerate(buckets):
            if value <= bound:
                index = position
                break
        with self._family._registry._lock:
            series.counts[index] += 1
            series.sum += value
            series.count += 1


class MetricsRegistry:
    """A set of metric families; every accessor is idempotent."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    def _family(self, name, help_text, kind, labelnames, buckets=None) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(self, name, help_text, kind, labelnames, buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"type or label set"
                )
            return family

    def counter(self, name, help_text="", labelnames=()) -> MetricFamily:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name, help_text="", labelnames=()) -> MetricFamily:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self, name, help_text="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ) -> MetricFamily:
        buckets = tuple(sorted(float(bound) for bound in buckets))
        if not buckets:
            raise ValueError("histograms need at least one bucket bound")
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def snapshot(self) -> dict:
        """The registry as plain picklable data (see module docstring)."""
        with self._lock:
            out = {}
            for name, family in self._families.items():
                series = {}
                for key, state in family._series.items():
                    if family.kind == "histogram":
                        series[key] = {
                            "counts": list(state.counts),
                            "sum": state.sum,
                            "count": state.count,
                        }
                    else:
                        series[key] = state.value
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "buckets": family.buckets,
                    "series": series,
                }
            return out

    def render(self) -> str:
        return render_snapshot(self.snapshot())


#: The per-process default registry.  Pool worker processes record
#: their morsel/steal counters here; the parent aggregates snapshots.
REGISTRY = MetricsRegistry()


def histogram_quantiles(buckets, series: dict, quantiles=(0.5, 0.99, 0.999)) -> dict:
    """Estimate quantiles from one snapshotted histogram series.

    ``buckets`` are the family's upper bounds and ``series`` one
    ``{"counts", "sum", "count"}`` entry from :meth:`snapshot`.  Uses
    the Prometheus convention: linear interpolation inside the owning
    bucket, with the +Inf bucket clamped to the largest finite bound
    (quantiles beyond the instrumented range are reported *at* the
    range edge rather than invented).  Empty series report 0.0.
    """
    counts = series["counts"]
    total = series["count"]
    out = {}
    for quantile in quantiles:
        if total <= 0:
            out[quantile] = 0.0
            continue
        rank = quantile * total
        cumulative = 0.0
        previous_bound = 0.0
        value = float(buckets[-1])
        for bound, count in zip(buckets, counts):
            if count and cumulative + count >= rank:
                inside = (rank - cumulative) / count
                value = previous_bound + (float(bound) - previous_bound) * inside
                break
            cumulative += count
            previous_bound = float(bound)
        out[quantile] = value
    return out


# ----------------------------------------------------------------------
# Snapshot aggregation and exposition
# ----------------------------------------------------------------------
def merge_snapshots(snapshots) -> dict:
    """Exact aggregation of registry snapshots.

    Counters and histogram buckets add; gauges add as well (the gauges
    we ship across processes are per-worker occupancy numbers whose
    fleet-wide meaning is the sum).  Families must agree on type,
    label names and bucket bounds.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": tuple(family["labelnames"]),
                    "buckets": family["buckets"],
                    "series": {
                        key: (dict(value) if isinstance(value, dict) else value)
                        for key, value in family["series"].items()
                    },
                }
                continue
            if (
                target["type"] != family["type"]
                or target["labelnames"] != tuple(family["labelnames"])
                or target["buckets"] != family["buckets"]
            ):
                raise ValueError(f"snapshot families for {name!r} are incompatible")
            for key, value in family["series"].items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = (
                        dict(value) if isinstance(value, dict) else value
                    )
                elif isinstance(value, dict):
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], value["counts"])
                    ]
                    existing["sum"] += value["sum"]
                    existing["count"] += value["count"]
                else:
                    target["series"][key] = existing + value
    return merged


def _label_text(labelnames, key, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(labelnames, key)
    ]
    pairs += [f'{name}="{_escape_label(value)}"' for name, value in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_snapshot(snapshot: dict) -> str:
    """Prometheus text exposition of one (possibly merged) snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        labelnames = tuple(family["labelnames"])
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for key in sorted(family["series"]):
            value = family["series"][key]
            if family["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(family["buckets"], value["counts"]):
                    cumulative += count
                    labels = _label_text(
                        labelnames, key, extra=(("le", _format_value(bound)),)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += value["counts"][-1]
                labels = _label_text(labelnames, key, extra=(("le", "+Inf"),))
                lines.append(f"{name}_bucket{labels} {cumulative}")
                plain = _label_text(labelnames, key)
                lines.append(f"{name}_sum{plain} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{plain} {value['count']}")
            else:
                labels = _label_text(labelnames, key)
                lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)|[+-]Inf|NaN)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text exposition; raises ValueError on any
    malformed line.  Returns ``{sample_name: {labels_tuple: value}}``
    plus a ``"__types__"`` entry mapping family name -> type.
    """
    samples: dict = {"__types__": {}}
    typed: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]) or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                raise ValueError(f"line {line_number}: malformed TYPE: {line!r}")
            samples["__types__"][parts[2]] = parts[3]
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        label_text = match.group("labels") or ""
        pairs = _LABEL_PAIR_RE.findall(label_text)
        reconstructed = ",".join(f'{name}="{value}"' for name, value in pairs)
        if reconstructed != label_text:
            raise ValueError(f"line {line_number}: malformed labels: {line!r}")
        value_text = match.group("value")
        value = float(value_text.replace("Inf", "inf"))
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            raise ValueError(
                f"line {line_number}: sample {name!r} has no preceding TYPE"
            )
        samples.setdefault(name, {})[tuple(sorted(pairs))] = value
    return samples
