"""Reproduction of *Micro-architectural Analysis of OLAP: Limitations and
Opportunities* (Utku Sirin and Anastasia Ailamaki, VLDB 2020).

The package is organised around the paper's methodology:

- :mod:`repro.hardware` models the Intel Broadwell / Skylake servers of the
  paper (caches, prefetchers, branch prediction, memory bandwidth,
  execution ports) and provides the Top-Down (TMAM) cycle containers.
- :mod:`repro.storage` provides row (NSM) and column (DSM) table storage.
- :mod:`repro.tpch` generates the TPC-H tables and defines the profiled
  queries (Q1, Q6, Q9, Q18).
- :mod:`repro.engines` implements the four profiled systems: a commercial
  row store stand-in ("DBMS R"), its column-store extension ("DBMS C"),
  a compiled engine (Typer) and a vectorized engine (Tectorwise).
- :mod:`repro.core` is the paper's contribution: a VTune-style
  micro-architectural profiler that turns measured execution work into
  CPU-cycle breakdowns and bandwidth utilisation figures.
- :mod:`repro.workloads` drives the paper's micro-benchmarks and TPC-H
  experiments; :mod:`repro.analysis` regenerates every table and figure.
- :mod:`repro.sql` parses the documented SQL dialect into a logical plan
  and lowers it onto the engines; :mod:`repro.serve` exposes the result
  as a concurrent query service (``python -m repro.serve``).
"""

from repro.hardware import BROADWELL, SKYLAKE, CycleBreakdown, PrefetcherConfig
from repro.core import (
    ExecutionContext,
    MicroArchProfiler,
    ProfileReport,
    WorkProfile,
)
from repro.engines import (
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.sql import SqlError, compile_sql, execute_sql, parse_sql
from repro.tpch import generate_database

__version__ = "1.0.0"

__all__ = [
    "BROADWELL",
    "SKYLAKE",
    "ColumnStoreEngine",
    "CycleBreakdown",
    "ExecutionContext",
    "MicroArchProfiler",
    "PrefetcherConfig",
    "ProfileReport",
    "RowStoreEngine",
    "SqlError",
    "TectorwiseEngine",
    "TyperEngine",
    "WorkProfile",
    "compile_sql",
    "execute_sql",
    "generate_database",
    "parse_sql",
    "__version__",
]
